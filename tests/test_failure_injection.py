"""Failure-injection tests.

A wrapper backend flips FindEdges answers with a configurable probability;
these tests establish (a) the wrapper is transparent at probability 0,
(b) corrupted negative-triangle answers propagate into *wrong distance
products*, and (c) the certificate validator catches the resulting corrupt
APSP outputs — i.e. the validation layer actually protects downstream users
from a faulty solver, which is the reason it exists.
"""

import numpy as np
import pytest

import repro
from repro.core.reductions import distance_product_via_find_edges

# The corrupt-solver model lives with the fault-injection plane so
# benchmarks and examples share it; these tests exercise the shared copy.
from repro.service.faults import FlakyFindEdges


def random_operands(seed, n=5, max_abs=5):
    rng = np.random.default_rng(seed)
    a = rng.integers(-max_abs, max_abs + 1, size=(n, n)).astype(float)
    b = rng.integers(-max_abs, max_abs + 1, size=(n, n)).astype(float)
    return a, b


class TestFlakyWrapper:
    def test_transparent_at_zero(self):
        a, b = random_operands(1)
        backend = FlakyFindEdges(repro.ReferenceFindEdges(), 0.0, rng=0)
        report = distance_product_via_find_edges(a, b, backend)
        assert np.array_equal(report.product, repro.distance_product(a, b))
        assert backend.flips == 0

    def test_always_flipping_corrupts_products(self):
        corrupted = 0
        for seed in range(10):
            a, b = random_operands(seed)
            backend = FlakyFindEdges(repro.ReferenceFindEdges(), 1.0, rng=seed)
            report = distance_product_via_find_edges(a, b, backend)
            if not np.array_equal(report.product, repro.distance_product(a, b)):
                corrupted += 1
        assert corrupted >= 8  # flipped answers wreck the binary search

    def test_flip_counter_tracks_calls(self):
        a, b = random_operands(2)
        backend = FlakyFindEdges(repro.ReferenceFindEdges(), 1.0, rng=1)
        report = distance_product_via_find_edges(a, b, backend)
        assert backend.flips == report.find_edges_calls


class TestValidatorCatchesFaultySolver:
    @pytest.mark.parametrize("seed", range(6))
    def test_corrupt_apsp_rejected(self, seed):
        graph = repro.random_digraph_no_negative_cycle(8, density=0.6, rng=seed)
        backend = FlakyFindEdges(repro.ReferenceFindEdges(), 0.8, rng=seed)
        solver = repro.QuantumAPSP(backend=backend)
        try:
            report = solver.solve(graph)
        except repro.NegativeCycleError:
            return  # corruption produced a (false) negative-cycle signal: caught
        truth = repro.floyd_warshall(graph)
        if np.array_equal(report.distances, truth):
            return  # corruption happened to cancel out — nothing to catch
        assert not repro.validate_apsp(graph, report.distances).valid

    @pytest.mark.parametrize("seed", range(6))
    def test_honest_solver_accepted(self, seed):
        graph = repro.random_digraph_no_negative_cycle(8, density=0.6, rng=seed)
        solver = repro.QuantumAPSP(backend=repro.ReferenceFindEdges())
        report = solver.solve(graph)
        assert repro.validate_apsp(graph, report.distances).valid
