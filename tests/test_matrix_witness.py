"""Tests for witnessed distance products and path reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.errors import GraphError
from repro.matrix.semiring import distance_product
from repro.matrix.witness import (
    decode_witness_product,
    path_weight,
    reconstruct_path,
    scale_for_witness,
    successor_matrix,
    witnessed_distance_product,
)

INF = float("inf")


def random_operands(seed, n=6, max_abs=5, inf_frac=0.25):
    rng = np.random.default_rng(seed)
    a = rng.integers(-max_abs, max_abs + 1, size=(n, n)).astype(float)
    b = rng.integers(-max_abs, max_abs + 1, size=(n, n)).astype(float)
    a[rng.random((n, n)) < inf_frac] = INF
    b[rng.random((n, n)) < inf_frac] = INF
    return a, b


class TestScaling:
    def test_scale_preserves_inf(self):
        a = np.array([[1.0, INF], [0.0, -2.0]])
        b = np.array([[INF, 3.0], [1.0, 0.0]])
        a_s, b_s, factor = scale_for_witness(a, b)
        assert factor == 3
        assert np.isinf(a_s[0, 1]) and np.isinf(b_s[0, 0])
        assert a_s[1, 1] == -6.0
        assert b_s[1, 0] == 1 * 3 + 1  # value·factor + row tag

    def test_decode_negative_values(self):
        # C̃ = v·factor + k must decode for negative v (floor semantics).
        factor = 5
        scaled = np.array([[-7.0]])  # v = −2, k = 3  (−2·5 + 3 = −7)
        values, witnesses = decode_witness_product(scaled, factor)
        assert values[0, 0] == -2.0
        assert witnesses[0, 0] == 3

    def test_decode_inf(self):
        values, witnesses = decode_witness_product(np.array([[INF]]), 4)
        assert np.isinf(values[0, 0])
        assert witnesses[0, 0] == -1

    def test_rejects_shape_mismatch(self):
        with pytest.raises(GraphError):
            scale_for_witness(np.zeros((2, 2)), np.zeros((3, 3)))


class TestWitnessedProduct:
    @pytest.mark.parametrize("seed", range(6))
    def test_values_match_plain_product(self, seed):
        a, b = random_operands(seed)
        values, witnesses = witnessed_distance_product(a, b)
        assert np.array_equal(values, distance_product(a, b))

    @pytest.mark.parametrize("seed", range(6))
    def test_witnesses_achieve_the_min(self, seed):
        a, b = random_operands(seed)
        values, witnesses = witnessed_distance_product(a, b)
        n = a.shape[0]
        for i in range(n):
            for j in range(n):
                k = witnesses[i, j]
                if k < 0:
                    assert np.isinf(values[i, j])
                else:
                    assert a[i, k] + b[k, j] == values[i, j]

    def test_witness_is_smallest_minimizer(self):
        # Two equal minimizers: the scaled tag must pick the smaller k.
        a = np.array([[0.0, 0.0, INF]] * 3)
        b = np.array([[5.0] * 3, [5.0] * 3, [INF] * 3])
        values, witnesses = witnessed_distance_product(a, b)
        assert values[0, 0] == 5.0
        assert witnesses[0, 0] == 0

    def test_pluggable_product_fn(self):
        calls = []

        def spy(a, b):
            calls.append(1)
            return distance_product(a, b)

        a, b = random_operands(1)
        witnessed_distance_product(a, b, product=spy)
        assert calls == [1]


class TestSuccessorMatrix:
    def test_first_hops_are_neighbors(self, small_digraph):
        distances = repro.floyd_warshall(small_digraph)
        successors = successor_matrix(small_digraph.apsp_matrix(), distances)
        n = small_digraph.num_vertices
        for i in range(n):
            assert successors[i, i] == i
            for j in range(n):
                if i == j:
                    continue
                hop = successors[i, j]
                if not np.isfinite(distances[i, j]):
                    assert hop == -1
                else:
                    assert small_digraph.has_edge(i, int(hop))

    def test_rejects_inconsistent_distances(self, small_digraph):
        distances = repro.floyd_warshall(small_digraph)
        corrupted = distances.copy()
        finite = np.isfinite(corrupted) & ~np.eye(len(corrupted), dtype=bool)
        index = tuple(np.argwhere(finite)[0])
        corrupted[index] -= 1
        with pytest.raises(GraphError):
            successor_matrix(small_digraph.apsp_matrix(), corrupted)


class TestReconstruction:
    def test_paths_realize_distances(self, small_digraph):
        distances = repro.floyd_warshall(small_digraph)
        successors = successor_matrix(small_digraph.apsp_matrix(), distances)
        weights = small_digraph.apsp_matrix()
        n = small_digraph.num_vertices
        for i in range(n):
            for j in range(n):
                path = reconstruct_path(successors, i, j)
                if path is None:
                    assert not np.isfinite(distances[i, j])
                    continue
                assert path[0] == i and path[-1] == j
                assert path_weight(weights, path) == distances[i, j]

    def test_trivial_path(self):
        successors = np.array([[0]])
        assert reconstruct_path(successors, 0, 0) == [0]

    def test_unreachable_returns_none(self):
        successors = np.array([[0, -1], [-1, 1]])
        assert reconstruct_path(successors, 0, 1) is None

    def test_cycle_detected(self):
        successors = np.array([[0, 1, 2], [2, 1, 2], [1, 1, 2]])
        # 0 → 1 → 2 → 1 → ... never reaches... craft: path(0,1): hop 1 = 1?
        successors = np.array([[0, 2, 0], [0, 1, 0], [0, 1, 2]])
        successors[0, 1] = 2
        successors[2, 1] = 0
        successors[0, 1] = 2  # 0→2→0→2... cycle
        with pytest.raises(GraphError):
            reconstruct_path(successors, 0, 1)

    def test_out_of_range_endpoints(self):
        with pytest.raises(GraphError):
            reconstruct_path(np.array([[0]]), 0, 5)

    def test_path_weight_rejects_missing_edge(self):
        weights = np.full((2, 2), INF)
        with pytest.raises(GraphError):
            path_weight(weights, [0, 1])

    def test_path_weight_empty(self):
        assert path_weight(np.zeros((2, 2)), [0]) == 0.0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_every_path_is_shortest(seed):
    """Reconstructed paths are valid edge walks with exactly the computed
    shortest-path weight, on random negative-cycle-free digraphs."""
    graph = repro.random_digraph_no_negative_cycle(7, density=0.5, rng=seed)
    distances = repro.floyd_warshall(graph)
    successors = successor_matrix(graph.apsp_matrix(), distances)
    weights = graph.apsp_matrix()
    for i in range(7):
        for j in range(7):
            path = reconstruct_path(successors, i, j)
            if path is not None:
                assert path_weight(weights, path) == distances[i, j]
