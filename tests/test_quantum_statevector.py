"""Unit tests for the state-vector simulator."""

import math

import numpy as np
import pytest

from repro.errors import QuantumSimulationError
from repro.quantum.statevector import StateVector


class TestInitialization:
    def test_starts_in_all_zero(self):
        state = StateVector(3)
        assert state.amplitudes[0] == 1.0
        assert state.probabilities().sum() == pytest.approx(1.0)

    def test_rejects_zero_qubits(self):
        with pytest.raises(QuantumSimulationError):
            StateVector(0)

    def test_rejects_too_many_qubits(self):
        with pytest.raises(QuantumSimulationError):
            StateVector(64)


class TestGates:
    def test_hadamard_creates_uniform(self):
        state = StateVector(3).h_all()
        probs = state.probabilities()
        assert np.allclose(probs, 1 / 8)

    def test_hadamard_self_inverse(self):
        state = StateVector(2).h(0).h(0)
        assert state.probabilities()[0] == pytest.approx(1.0)

    def test_x_flips_basis(self):
        state = StateVector(2).x(1)
        assert state.probabilities()[2] == pytest.approx(1.0)  # |10⟩

    def test_x_on_qubit_zero(self):
        state = StateVector(2).x(0)
        assert state.probabilities()[1] == pytest.approx(1.0)  # |01⟩

    def test_z_phase_only_visible_after_interference(self):
        # HZH = X: phase gates compose into bit flips through Hadamards.
        state = StateVector(1).h(0).z(0).h(0)
        assert state.probabilities()[1] == pytest.approx(1.0)

    def test_mcz_flips_only_all_ones(self):
        state = StateVector(2).h_all().mcz()
        amps = state.amplitudes
        assert amps[3].real == pytest.approx(-0.5)
        assert amps[0].real == pytest.approx(0.5)

    def test_phase_flip_marks_selected_states(self):
        state = StateVector(2).h_all().phase_flip([1, 2])
        amps = state.amplitudes
        assert amps[1].real == pytest.approx(-0.5)
        assert amps[2].real == pytest.approx(-0.5)
        assert amps[0].real == pytest.approx(0.5)

    def test_phase_flip_empty_is_identity(self):
        state = StateVector(2).h_all()
        before = state.amplitudes.copy()
        state.phase_flip([])
        assert np.array_equal(state.amplitudes, before)

    def test_phase_flip_out_of_range(self):
        with pytest.raises(QuantumSimulationError):
            StateVector(2).phase_flip([4])

    def test_gate_out_of_range(self):
        with pytest.raises(QuantumSimulationError):
            StateVector(2).h(2)

    def test_diffusion_preserves_uniform(self):
        state = StateVector(3).h_all().diffusion()
        assert np.allclose(state.probabilities(), 1 / 8)

    def test_norm_preserved_by_all_gates(self):
        state = StateVector(3).h_all().x(1).z(2).phase_flip([5]).diffusion()
        assert state.norm() == pytest.approx(1.0)


class TestMeasurement:
    def test_measure_deterministic_state(self):
        state = StateVector(2).x(0)
        assert state.measure(rng=0) == 1

    def test_measure_distribution(self):
        state = StateVector(1).h(0)
        rng = np.random.default_rng(0)
        outcomes = [state.measure(rng) for _ in range(2000)]
        frac = sum(outcomes) / len(outcomes)
        assert 0.45 < frac < 0.55

    def test_probability_of_subset(self):
        state = StateVector(2).h_all()
        assert state.probability_of([0, 3]) == pytest.approx(0.5)
