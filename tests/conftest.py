"""Shared fixtures.

Every randomized test takes an explicit seed; fixtures provide graphs and
constants bundles sized so the interesting machinery engages while suites
stay fast.  ``TEST_CONSTANTS`` (scale 0.5) keeps the paper's constant ratios
but lets thresholds bite at ``n`` in the tens.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.constants import PaperConstants


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "rng_contract: RNG consumption-contract equivalence and statistical"
        " suites (tests/test_rng_contract_v2.py)",
    )
    config.addinivalue_line(
        "markers",
        "faults: fault-injection and recovery suites (tests/test_service_faults.py,"
        " tests/test_service_recovery.py)",
    )
    config.addinivalue_line(
        "markers",
        "scaleout: multi-process shared-memory equivalence suites"
        " (tests/test_parallel_scaleout.py)",
    )

#: Constants used by most protocol tests: large enough scale that Λx covers
#: every pair w.h.p. at n=16..36, small enough that classes beyond T0 occur.
TEST_CONSTANTS = PaperConstants(scale=0.5)

#: A lighter bundle for the larger (n ≥ 64) protocol tests.
LIGHT_CONSTANTS = PaperConstants(scale=0.15)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_undirected():
    """A 16-vertex undirected weighted graph with many negative triangles."""
    return repro.random_undirected_graph(16, density=0.6, max_weight=8, rng=3)


@pytest.fixture
def small_digraph():
    """An 8-vertex digraph with negative edges but no negative cycle."""
    return repro.random_digraph_no_negative_cycle(
        8, density=0.5, max_weight=6, rng=4
    )


@pytest.fixture
def planted_graph():
    """A 20-vertex graph with 6 planted negative-triangle pairs."""
    graph, planted = repro.planted_negative_triangle_graph(
        20, num_planted=6, triangles_per_pair=2, rng=11
    )
    return graph, planted
