"""Tests for the classical baselines."""

import numpy as np
import pytest

import repro
from repro.baselines.censor_hillel import distributed_minplus_product
from repro.core.problems import FindEdgesInstance
from repro.matrix.semiring import distance_product


class TestDolevFindEdges:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_on_random_graphs(self, seed):
        graph = repro.random_undirected_graph(18, density=0.6, max_weight=8, rng=seed)
        instance = FindEdgesInstance(graph)
        solution = repro.DolevFindEdges(rng=seed).find_edges(instance)
        assert solution.pairs == instance.reference_solution()

    def test_deterministic_output(self):
        graph = repro.random_undirected_graph(15, density=0.6, max_weight=8, rng=1)
        instance = FindEdgesInstance(graph)
        a = repro.DolevFindEdges(rng=0).find_edges(instance)
        b = repro.DolevFindEdges(rng=99).find_edges(instance)
        assert a.pairs == b.pairs  # listing is deterministic

    def test_scope_respected(self):
        graph = repro.random_undirected_graph(15, density=0.7, max_weight=8, rng=2)
        truth = FindEdgesInstance(graph).reference_solution()
        scope = set(list(truth)[:2]) | {(0, 1)}
        instance = FindEdgesInstance(graph, scope=scope)
        solution = repro.DolevFindEdges(rng=0).find_edges(instance)
        assert solution.pairs == truth & scope

    def test_rounds_scale_as_n_third(self):
        rounds = {}
        for n in (27, 64, 125, 216):
            graph = repro.random_undirected_graph(n, density=0.3, max_weight=4, rng=1)
            instance = FindEdgesInstance(graph)
            rounds[n] = repro.DolevFindEdges(rng=0).find_edges(instance).rounds
        exponent, _, r2 = repro.fit_exponent(list(rounds), list(rounds.values()))
        assert 0.2 < exponent < 0.55
        assert r2 > 0.8

    def test_asymmetric_instance(self):
        # Witness graph lacks the pair edge; pair graph supplies the weight.
        witness = repro.UndirectedWeightedGraph.from_edges(
            4, [(0, 2, 2), (1, 2, 3)]
        )
        pair = repro.UndirectedWeightedGraph.from_edges(4, [(0, 1, -9)])
        instance = FindEdgesInstance(witness, scope={(0, 1)}, pair_graph=pair)
        solution = repro.DolevFindEdges(rng=0).find_edges(instance)
        assert solution.pairs == {(0, 1)}


class TestCensorHillel:
    @pytest.mark.parametrize("seed", range(3))
    def test_product_exact(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-5, 6, size=(9, 9)).astype(float)
        b = rng.integers(-5, 6, size=(9, 9)).astype(float)
        product, ledger = distributed_minplus_product(a, b, rng=seed)
        assert np.array_equal(product, distance_product(a, b))
        assert ledger.total > 0

    @pytest.mark.parametrize("seed", range(3))
    def test_apsp_exact(self, seed):
        graph = repro.random_digraph_no_negative_cycle(12, density=0.5, rng=seed)
        report = repro.CensorHillelAPSP(rng=seed).solve(graph)
        assert np.array_equal(report.distances, repro.floyd_warshall(graph))

    def test_negative_cycle_detected(self):
        graph = repro.WeightedDigraph.from_edges(3, [(0, 1, 1), (1, 2, -5), (2, 0, 1)])
        from repro.errors import NegativeCycleError

        with pytest.raises(NegativeCycleError):
            repro.CensorHillelAPSP(rng=0).solve(graph)

    def test_rounds_scale_as_n_third(self):
        rounds = {}
        for n in (27, 64, 125, 216):
            graph = repro.random_digraph_no_negative_cycle(n, density=0.3, rng=1)
            rounds[n] = repro.CensorHillelAPSP(rng=0).solve(graph).rounds
        # Per-squaring cost ~ n^{1/3}; squarings add a log factor.
        exponent, _, r2 = repro.fit_exponent(list(rounds), list(rounds.values()))
        assert 0.25 < exponent < 0.75
        assert r2 > 0.8

    def test_product_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            distributed_minplus_product(np.zeros((2, 2)), np.zeros((3, 3)))
