"""Tests for Proposition 2: distance product via FindEdges binary search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.reductions import distance_product_via_find_edges
from repro.errors import GraphError
from repro.matrix.semiring import distance_product

INF = float("inf")


def random_operands(seed, n=5, max_abs=6, inf_frac=0.2):
    rng = np.random.default_rng(seed)
    a = rng.integers(-max_abs, max_abs + 1, size=(n, n)).astype(float)
    b = rng.integers(-max_abs, max_abs + 1, size=(n, n)).astype(float)
    a[rng.random((n, n)) < inf_frac] = INF
    b[rng.random((n, n)) < inf_frac] = INF
    return a, b


class TestWithReferenceBackend:
    @pytest.mark.parametrize("seed", range(6))
    def test_exact_product(self, seed):
        a, b = random_operands(seed)
        report = distance_product_via_find_edges(a, b, repro.ReferenceFindEdges())
        assert np.array_equal(report.product, distance_product(a, b))

    def test_handles_infinite_rows(self):
        a = np.full((4, 4), INF)
        b = np.zeros((4, 4))
        report = distance_product_via_find_edges(a, b, repro.ReferenceFindEdges())
        assert np.isinf(report.product).all()

    def test_handles_all_zero(self):
        a = np.zeros((3, 3))
        b = np.zeros((3, 3))
        report = distance_product_via_find_edges(a, b, repro.ReferenceFindEdges())
        assert np.array_equal(report.product, np.zeros((3, 3)))

    def test_call_count_logarithmic_in_m(self):
        a, b = random_operands(1, max_abs=4)
        small = distance_product_via_find_edges(a, b, repro.ReferenceFindEdges())
        a2, b2 = random_operands(1, max_abs=64)
        large = distance_product_via_find_edges(a2, b2, repro.ReferenceFindEdges())
        # log2(4·64+1) ≈ 8 vs log2(4·4+1) ≈ 4.1 (+1 infinity call each).
        assert small.find_edges_calls <= 7
        assert large.find_edges_calls <= 11
        assert large.find_edges_calls > small.find_edges_calls

    def test_negative_heavy_entries(self):
        a = np.full((3, 3), -5.0)
        b = np.full((3, 3), -5.0)
        report = distance_product_via_find_edges(a, b, repro.ReferenceFindEdges())
        assert (report.product == -10.0).all()

    def test_mixed_extremes(self):
        a = np.array([[3.0, INF], [-7.0, 0.0]])
        b = np.array([[INF, 2.0], [1.0, INF]])
        report = distance_product_via_find_edges(a, b, repro.ReferenceFindEdges())
        assert np.array_equal(report.product, distance_product(a, b))

    def test_rejects_neg_inf_operand(self):
        a = np.zeros((2, 2))
        a[0, 0] = -INF
        with pytest.raises(GraphError):
            distance_product_via_find_edges(a, np.zeros((2, 2)), repro.ReferenceFindEdges())

    def test_rejects_shape_mismatch(self):
        with pytest.raises(GraphError):
            distance_product_via_find_edges(
                np.zeros((2, 2)), np.zeros((3, 3)), repro.ReferenceFindEdges()
            )


class TestWithDistributedBackends:
    def test_dolev_backend_exact_with_rounds(self):
        a, b = random_operands(3, n=4)
        report = distance_product_via_find_edges(a, b, repro.DolevFindEdges(rng=0))
        assert np.array_equal(report.product, distance_product(a, b))
        assert report.rounds > 0

    def test_quantum_backend_exact(self):
        from tests.conftest import TEST_CONSTANTS

        a, b = random_operands(4, n=4, max_abs=3)
        backend = repro.QuantumFindEdges(constants=TEST_CONSTANTS, rng=5)
        report = distance_product_via_find_edges(a, b, backend)
        assert np.array_equal(report.product, distance_product(a, b))
        assert report.rounds > 0
        assert report.ledger.total == pytest.approx(report.rounds)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_reduction_equals_reference(seed):
    """Binary search over negative-triangle calls always reproduces the
    numpy min-plus product exactly (integer entries, ±inf patterns)."""
    a, b = random_operands(seed, n=4, max_abs=5, inf_frac=0.3)
    report = distance_product_via_find_edges(a, b, repro.ReferenceFindEdges())
    assert np.array_equal(report.product, distance_product(a, b))
