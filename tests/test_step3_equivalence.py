"""Array-backed Step-3 accounting ≡ the preserved dict-walking forms.

The columnar :class:`repro.core.evaluation.QueryPlan` path —
``query_loads``/``evaluation_rounds``/``step0_duplication_loads`` plus the
CSR-domain, bulk-lane ``run_step3`` driver — must reproduce the dict forms
preserved in :mod:`repro.core._reference` *byte for byte*: identical
per-node loads, identical round charges (evaluation, Step-0 duplication,
search phases), identical found pairs and diagnostics, and identically
consumed RNG streams (the driver generator *and* the network generator the
duplication schemes draw their seeds from).

Also here: the classical-ablation properties of satellite 3 —
``_run_class_classical`` finds a superset of the quantum ``found_pairs`` on
the same instance, and its per-class round charge is exactly
``eval_r × max|X|`` under the array-backed ``eval_r``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.congest.network import CongestClique
from repro.congest.partitions import CliquePartitions
from repro.core import _reference as reference
from repro.core.compute_pairs import _step2_sample
from repro.core.constants import PaperConstants
from repro.core.evaluation import (
    QueryPlan,
    block_two_hop,
    evaluation_rounds,
    query_loads,
    step0_duplication_loads,
)
from repro.core.identify_class import ClassAssignment, run_identify_class
from repro.core.quantum_step3 import run_step3

SIZES = [16, 48, 128]
CONSTANTS = PaperConstants(scale=0.5)
#: 2^1 / (class_bound_factor · scale · log n) > 1 — forces dup > 1 at n=16.
DUP_CONSTANTS = PaperConstants(scale=0.5, class_bound_factor=0.333)


def build_env(n: int, seed: int, constants: PaperConstants):
    """One fully seeded Step-3 input world (network, partitions, assignment,
    node_pairs), built through the real Step-2 and IdentifyClass paths so
    both drivers see identical pipeline state."""
    graph = repro.random_undirected_graph(n, density=0.5, max_weight=7, rng=seed)
    instance = repro.FindEdgesInstance(graph)
    partitions = CliquePartitions(n)
    network = CongestClique(n, rng=seed + 1)
    network.register_scheme("triple", partitions.triple_labels())
    network.register_scheme("search", partitions.search_labels())
    fine_blocks = partitions.fine.blocks()
    cache: dict = {}

    def two_hop_for(bu, bv):
        if (bu, bv) not in cache:
            cache[(bu, bv)] = block_two_hop(
                graph.weights,
                partitions.coarse.block(bu),
                partitions.coarse.block(bv),
                fine_blocks,
            )
        return cache[(bu, bv)]

    rng = np.random.default_rng(seed)
    node_pairs, _coverage = _step2_sample(
        network, partitions, instance, constants, rng, two_hop_for
    )
    assignment = run_identify_class(
        network, instance, partitions, constants, two_hop_for, rng
    )
    return network, partitions, assignment, node_pairs


def forced_class_assignment(assignment: ClassAssignment, alpha: int) -> ClassAssignment:
    """Reassign every triple to class ``alpha`` (the Fig. 5 regime)."""
    classes = {label: alpha for label in assignment.classes}
    t_alpha = {
        key: {alpha: sorted({bw for blocks in per.values() for bw in blocks})}
        for key, per in assignment.t_alpha.items()
    }
    return ClassAssignment(classes=classes, t_alpha=t_alpha)


def run_both(n, seed, constants, search_mode, *, force_alpha=None):
    outcomes = []
    for driver in (run_step3, reference.run_step3_loops):
        network, partitions, assignment, node_pairs = build_env(n, seed, constants)
        if force_alpha is not None:
            assignment = forced_class_assignment(assignment, force_alpha)
        generator = np.random.default_rng(seed + 77)
        # Byte-identity to the reference loops is the v1 contract's claim;
        # the loops *are* v1, so pin the array driver to it explicitly.
        extra = {"rng_contract": "v1"} if driver is run_step3 else {}
        report = driver(
            network,
            partitions,
            constants,
            assignment,
            node_pairs,
            rng=generator,
            search_mode=search_mode,
            **extra,
        )
        outcomes.append(
            {
                "report": report,
                "ledger": network.ledger.snapshot(),
                "driver_stream": generator.random(16),
                "network_stream": network.rng.random(16),
            }
        )
    return outcomes


def assert_outcomes_identical(array_form, loops_form):
    a, b = array_form["report"], loops_form["report"]
    assert a.found_pairs == b.found_pairs
    assert a.eval_rounds_per_alpha == b.eval_rounds_per_alpha
    assert a.search_rounds_per_alpha == b.search_rounds_per_alpha
    assert a.duplication_per_alpha == b.duplication_per_alpha
    assert a.typicality_truncations == b.typicality_truncations
    assert a.corrupted_repetitions == b.corrupted_repetitions
    assert a.total_searches == b.total_searches
    assert array_form["ledger"] == loops_form["ledger"]
    # Both generators — the driver's (schedule + lane seeds) and the
    # network's (duplication-scheme seeds) — were consumed identically.
    assert np.array_equal(array_form["driver_stream"], loops_form["driver_stream"])
    assert np.array_equal(array_form["network_stream"], loops_form["network_stream"])


class TestRunStep3Equivalence:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_quantum_driver_matches_reference(self, n, seed):
        array_form, loops_form = run_both(n, seed, CONSTANTS, "quantum")
        assert_outcomes_identical(array_form, loops_form)

    @pytest.mark.parametrize("n", SIZES)
    def test_classical_driver_matches_reference(self, n):
        array_form, loops_form = run_both(n, 5, CONSTANTS, "classical")
        assert_outcomes_identical(array_form, loops_form)

    @pytest.mark.parametrize("n", [16, 48])
    @pytest.mark.parametrize("search_mode", ["quantum", "classical"])
    def test_duplicated_class_matches_reference(self, n, search_mode):
        # Force every triple into class 1 so the Fig. 5 path runs: the dup
        # scheme registration, the prefix map, and the Step-0 charge must
        # all agree (including the network-generator seed draws).
        array_form, loops_form = run_both(
            n, 7, DUP_CONSTANTS, search_mode, force_alpha=1
        )
        report = array_form["report"]
        assert all(dup > 1 for dup in report.duplication_per_alpha.values())
        assert any(
            phase.startswith("step3.alpha1.duplication")
            for phase in array_form["ledger"]
        )
        assert_outcomes_identical(array_form, loops_form)


def random_dict_plan(rng, num_nodes):
    node_physical = {}
    query_plan = {}
    dest_physical = {
        f"d{index}": int(rng.integers(0, num_nodes)) for index in range(12)
    }
    for index in range(int(rng.integers(1, 9))):
        label = f"s{index}"
        node_physical[label] = int(rng.integers(0, num_nodes))
        query_plan[label] = {
            f"d{int(dest)}": int(rng.integers(0, 40))
            for dest in rng.choice(12, size=int(rng.integers(1, 6)), replace=False)
        }
    return node_physical, query_plan, dest_physical


class TestLoadEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("beta", [0.5, 5.0, 17.3, 1000.0])
    def test_query_loads_match_dict_walk(self, seed, beta):
        rng = np.random.default_rng(seed)
        num_nodes = 16
        node_physical, query_plan, dest_physical = random_dict_plan(rng, num_nodes)
        plan = QueryPlan.from_mappings(node_physical, query_plan, dest_physical)
        src, dst = query_loads(num_nodes, plan, beta)
        ref_src, ref_dst = reference.query_loads_dicts(
            num_nodes, node_physical, query_plan, dest_physical, beta
        )
        assert np.array_equal(src, np.asarray(ref_src))
        assert np.array_equal(dst, np.asarray(ref_dst))
        assert evaluation_rounds(num_nodes, plan, beta) == (
            reference.evaluation_rounds_dicts(
                num_nodes, node_physical, query_plan, dest_physical, beta
            )
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_step0_loads_match_dict_walk(self, seed):
        rng = np.random.default_rng(100 + seed)
        num_nodes = 12
        source_physical = {}
        duplicate_physical = {}
        words_per_source = {}
        src_rows, dst_rows, words_rows = [], [], []
        for index in range(int(rng.integers(1, 10))):
            label = f"t{index}"
            host = int(rng.integers(0, num_nodes))
            duplicates = rng.integers(0, num_nodes, size=int(rng.integers(1, 5)))
            words = int(rng.integers(1, 50))
            source_physical[label] = host
            duplicate_physical[label] = duplicates.tolist()
            words_per_source[label] = words
            for phys in duplicates.tolist():
                src_rows.append(host)
                dst_rows.append(phys)
                words_rows.append(words)
        array_rounds = step0_duplication_loads(
            num_nodes,
            np.asarray(src_rows, dtype=np.int64),
            np.asarray(dst_rows, dtype=np.int64),
            np.asarray(words_rows, dtype=np.int64),
        )
        assert array_rounds == reference.step0_duplication_loads_dicts(
            num_nodes, source_physical, duplicate_physical, words_per_source
        )


class TestClassicalAblation:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_classical_finds_superset_of_quantum(self, n, seed):
        results = {}
        for mode in ("quantum", "classical"):
            network, partitions, assignment, node_pairs = build_env(
                n, seed, CONSTANTS
            )
            results[mode] = run_step3(
                network, partitions, CONSTANTS, assignment, node_pairs,
                rng=seed + 1, search_mode=mode,
            )
        # The linear scan is exact on the same domains; Grover can only
        # miss (verification forbids false positives in both modes).
        assert results["quantum"].found_pairs <= results["classical"].found_pairs

    @pytest.mark.parametrize("n", SIZES)
    def test_classical_round_charge_is_eval_r_times_max_domain(self, n):
        network, partitions, assignment, node_pairs = build_env(n, 9, CONSTANTS)
        report = run_step3(
            network, partitions, CONSTANTS, assignment, node_pairs,
            rng=2, search_mode="classical",
        )
        for alpha, eval_r in report.eval_rounds_per_alpha.items():
            max_domain = max(
                (
                    len(assignment.blocks_of_class(bu, bv, alpha))
                    for (bu, bv, _x) in node_pairs
                    if assignment.blocks_of_class(bu, bv, alpha)
                ),
                default=0,
            )
            if max_domain == 0:
                assert report.search_rounds_per_alpha[alpha] == 0.0
            else:
                assert report.search_rounds_per_alpha[alpha] == pytest.approx(
                    eval_r * max_domain
                )
