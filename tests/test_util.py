"""Unit tests for repro.util (rng plumbing and math helpers)."""

import math

import numpy as np
import pytest

from repro.util.mathutil import (
    ceil_div,
    ceil_log2,
    guarded_log,
    is_power_of_two,
    next_power_of_two,
    sin_squared_grover,
)
from repro.util.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1000, size=10)
        b = ensure_rng(7).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_is_independent(self):
        parent = ensure_rng(3)
        child = spawn_rng(parent)
        # Child's stream differs from a fresh parent's continued stream.
        assert not np.array_equal(
            child.integers(0, 10**9, size=8),
            ensure_rng(3).integers(0, 10**9, size=8),
        )

    def test_spawn_advances_parent_deterministically(self):
        p1, p2 = ensure_rng(3), ensure_rng(3)
        c1, c2 = spawn_rng(p1), spawn_rng(p2)
        assert np.array_equal(
            c1.integers(0, 10**9, size=4), c2.integers(0, 10**9, size=4)
        )


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_dividend(self):
        assert ceil_div(0, 5) == 0

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_rejects_negative_dividend(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)


class TestGuardedLog:
    def test_matches_log2_above_two(self):
        assert guarded_log(16) == 4.0

    def test_clamped_below(self):
        assert guarded_log(1) == 1.0
        assert guarded_log(2) == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            guarded_log(0)


class TestPowersOfTwo:
    def test_ceil_log2(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(16) == 4
        assert ceil_log2(17) == 5

    def test_ceil_log2_rejects_zero(self):
        with pytest.raises(ValueError):
            ceil_log2(0)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(6)
        assert not is_power_of_two(-4)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(8) == 8


class TestGroverFormula:
    def test_zero_solutions_is_zero(self):
        assert sin_squared_grover(8, 0, 3) == 0.0

    def test_all_solutions_is_one(self):
        assert sin_squared_grover(8, 8, 0) == pytest.approx(1.0)

    def test_zero_iterations_gives_t_over_n(self):
        assert sin_squared_grover(100, 7, 0) == pytest.approx(0.07)

    def test_quarter_fraction_one_iteration_is_certain(self):
        # t/N = 1/4 ⇒ θ = π/6 ⇒ sin²(3θ) = sin²(π/2) = 1: the textbook
        # exact case.
        assert sin_squared_grover(4, 1, 1) == pytest.approx(1.0)

    def test_optimal_iterations_nearly_one(self):
        n = 10_000
        k = int(math.floor(math.pi / 4 * math.sqrt(n)))
        assert sin_squared_grover(n, 1, k) > 0.999

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            sin_squared_grover(0, 0, 0)
        with pytest.raises(ValueError):
            sin_squared_grover(4, 5, 0)
        with pytest.raises(ValueError):
            sin_squared_grover(4, 1, -1)
