"""Unit tests for the distributed quantum search framework (Section 4.1)."""

import numpy as np
import pytest

from repro.congest.accounting import RoundLedger
from repro.errors import QuantumSimulationError
from repro.quantum.distributed import DistributedQuantumSearch


def make_search(items, solutions, *, eval_rounds=3.0, rng=0, amplification=12.0):
    solution_set = set(solutions)
    return DistributedQuantumSearch(
        items,
        lambda x: x in solution_set,
        eval_rounds=eval_rounds,
        rng=rng,
        amplification=amplification,
    )


class TestConstruction:
    def test_truth_table_built_once(self):
        calls = []

        def predicate(x):
            calls.append(x)
            return x == 2

        DistributedQuantumSearch(range(5), predicate, eval_rounds=1.0, rng=0)
        assert sorted(calls) == [0, 1, 2, 3, 4]

    def test_rejects_empty_domain(self):
        with pytest.raises(QuantumSimulationError):
            DistributedQuantumSearch([], lambda x: True, eval_rounds=1.0)

    def test_rejects_negative_eval_rounds(self):
        with pytest.raises(QuantumSimulationError):
            DistributedQuantumSearch([1], lambda x: True, eval_rounds=-1.0)


class TestRun:
    @pytest.mark.parametrize("seed", range(10))
    def test_finds_unique_solution(self, seed):
        search = make_search(range(16), [11], rng=seed)
        outcome = search.run()
        assert outcome.found == 11

    @pytest.mark.parametrize("seed", range(5))
    def test_finds_one_of_many(self, seed):
        solutions = {2, 5, 9}
        search = make_search(range(12), solutions, rng=seed)
        outcome = search.run()
        assert outcome.found in solutions

    @pytest.mark.parametrize("seed", range(5))
    def test_no_solution_returns_none(self, seed):
        search = make_search(range(10), [], rng=seed)
        outcome = search.run()
        assert outcome.found is None
        # The search must have exhausted its repetition budget.
        assert outcome.repetitions == search.max_repetitions()

    def test_no_false_positive_ever(self):
        # Verification makes false positives impossible regardless of seed.
        for seed in range(20):
            search = make_search(range(8), [3], rng=seed)
            outcome = search.run()
            assert outcome.found in (3, None)

    def test_rounds_charged_to_ledger(self):
        ledger = RoundLedger()
        search = make_search(range(16), [4], eval_rounds=5.0, rng=1)
        outcome = search.run(ledger, phase="my_search")
        assert ledger.rounds("my_search") == outcome.rounds
        assert outcome.rounds == pytest.approx(outcome.oracle_calls * 5.0)

    def test_arbitrary_item_types(self):
        items = [("w", i) for i in range(9)]
        search = DistributedQuantumSearch(
            items, lambda item: item[1] == 7, eval_rounds=1.0, rng=3
        )
        assert search.run().found == ("w", 7)

    def test_round_cost_scales_with_sqrt_domain(self):
        # Expected oracle calls grow ~√N: compare N=16 vs N=1024 on many
        # seeds (failure-free searches).
        def mean_calls(num_items):
            total = 0
            for seed in range(30):
                search = make_search(range(num_items), [0], rng=seed)
                total += search.run().oracle_calls
            return total / 30

        ratio = mean_calls(1024) / mean_calls(16)
        # √(1024/16) = 8; BBHT noise keeps it within a loose band.
        assert 2.0 < ratio < 25.0


class TestRunFixed:
    def test_fixed_iterations_probability(self):
        # N=15 padded to 16 with the dummy ⇒ t' = 2 marked of 16.  At the
        # optimal k = ⌊π/4·√(16/2)⌋ = 2 the marked-measurement probability is
        # sin²(5·arcsin(√(1/8))) ≈ 0.95, and the dummy absorbs half the
        # marked mass, so the real solution lands with p ≈ 0.47.
        hits = 0
        for seed in range(100):
            search = make_search(range(15), [6], rng=seed)
            outcome = search.run_fixed(2)
            hits += outcome.found == 6
        assert 30 <= hits <= 65

    def test_fixed_charges_iterations_plus_verification(self):
        search = make_search(range(8), [1], eval_rounds=2.0, rng=0)
        outcome = search.run_fixed(4)
        assert outcome.rounds == pytest.approx((4 + 1) * 2.0)
        assert outcome.oracle_calls == 5
