"""Tests for the FindEdges problem definitions and ground-truth helpers."""

import numpy as np
import pytest

import repro
from repro.core.problems import FindEdgesInstance, FindEdgesSolution
from repro.errors import GraphError, PromiseViolationError
from repro.graphs.digraph import UndirectedWeightedGraph


def one_triangle():
    return UndirectedWeightedGraph.from_edges(
        4, [(0, 1, -9), (0, 2, 2), (1, 2, 3), (2, 3, 1)]
    )


class TestInstance:
    def test_default_scope_is_all_edges(self):
        inst = FindEdgesInstance(one_triangle())
        assert inst.effective_scope() == {(0, 1), (0, 2), (1, 2), (2, 3)}

    def test_scope_normalized_to_canonical(self):
        inst = FindEdgesInstance(one_triangle(), scope={(1, 0), (3, 2)})
        assert inst.scope == {(0, 1), (2, 3)}

    def test_scope_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            FindEdgesInstance(one_triangle(), scope={(0, 9)})

    def test_pair_graph_must_match_vertices(self):
        other = UndirectedWeightedGraph.from_edges(3, [(0, 1, 1)])
        with pytest.raises(GraphError):
            FindEdgesInstance(one_triangle(), pair_graph=other)

    def test_reference_solution(self):
        inst = FindEdgesInstance(one_triangle())
        assert inst.reference_solution() == {(0, 1), (0, 2), (1, 2)}

    def test_reference_solution_respects_scope(self):
        inst = FindEdgesInstance(one_triangle(), scope={(0, 1), (2, 3)})
        assert inst.reference_solution() == {(0, 1)}

    def test_max_scope_triangle_count(self):
        inst = FindEdgesInstance(one_triangle())
        assert inst.max_scope_triangle_count() == 1
        empty_scope = FindEdgesInstance(one_triangle(), scope=set())
        assert empty_scope.max_scope_triangle_count() == 0

    def test_check_promise(self):
        inst = FindEdgesInstance(one_triangle())
        inst.check_promise(1.0)  # fine
        with pytest.raises(PromiseViolationError):
            inst.check_promise(0.5)

    def test_asymmetric_instance(self):
        # Witness graph without the pair edge still detects the pair when
        # the pair graph supplies its weight.
        witness = UndirectedWeightedGraph.from_edges(
            4, [(0, 2, 2), (1, 2, 3)]
        )
        inst = FindEdgesInstance(
            witness, scope={(0, 1)}, pair_graph=one_triangle()
        )
        assert inst.reference_solution() == {(0, 1)}


class TestSolution:
    def test_errors_against(self):
        inst = FindEdgesInstance(one_triangle())
        sol = FindEdgesSolution(pairs={(0, 1), (2, 3)}, rounds=1.0)
        false_pos, false_neg = sol.errors_against(inst)
        assert false_pos == {(2, 3)}
        assert false_neg == {(0, 2), (1, 2)}
        assert not sol.is_correct_for(inst)

    def test_correct_solution(self):
        inst = FindEdgesInstance(one_triangle())
        sol = FindEdgesSolution(pairs=inst.reference_solution(), rounds=0.0)
        assert sol.is_correct_for(inst)


class TestBackendProtocol:
    def test_reference_backend_satisfies_protocol(self):
        from repro.core.problems import FindEdgesBackend

        assert isinstance(repro.ReferenceFindEdges(), FindEdgesBackend)
        assert isinstance(repro.DolevFindEdges(), FindEdgesBackend)
        assert isinstance(repro.QuantumFindEdges(), FindEdgesBackend)
