"""Telemetry against the real pipeline: coverage and non-interference.

Two properties, both load-bearing for the observability plane:

* **Coverage** — running ComputePairs (and the service layer) under a
  collector produces the expected span tree, per-phase congest ledger,
  and a consistent RNG accounting (span charges + unattributed bucket ==
  totals).
* **Non-interference** — installing a collector changes *nothing* about
  the computation: scope pairs, per-phase round ledger, and total rounds
  are byte-identical with telemetry on and off, because counting
  generators are stream-identical and the bridged tracer only mirrors
  records the router already produced.
"""

from __future__ import annotations

import repro
from repro import telemetry
from repro.core.compute_pairs import compute_pairs
from repro.core.problems import FindEdgesInstance
from repro.service.queries import QueryEngine, QueryRequest
from repro.telemetry import report

from tests.conftest import TEST_CONSTANTS

#: Span names every quantum ComputePairs run must produce.
EXPECTED_SPANS = {
    "compute_pairs",
    "compute_pairs.step0_setup",
    "compute_pairs.step1_load",
    "compute_pairs.step2_sample",
    "compute_pairs.step3_identify",
    "compute_pairs.step3_search",
    "quantum.batched_run",
    "step3.class",
}


def solve(graph, seed=7):
    instance = FindEdgesInstance(graph)
    return compute_pairs(instance, constants=TEST_CONSTANTS, rng=seed)


class TestComputePairsCoverage:
    def test_span_tree_and_attrs(self, small_undirected):
        with telemetry.collect() as collector:
            solution = solve(small_undirected)
        names = {record.name for record in collector.records}
        assert EXPECTED_SPANS <= names
        root = next(r for r in collector.records if r.name == "compute_pairs")
        assert root.parent_id is None
        assert root.attrs["n"] == 16
        assert root.attrs["search_mode"] == "quantum"
        assert root.attrs["rounds"] == solution.rounds
        steps = [r for r in collector.records if r.name.startswith("compute_pairs.")]
        assert all(step.parent_id is not None for step in steps)

    def test_congest_ledger_bridged(self, small_undirected):
        with telemetry.collect() as collector:
            solution = solve(small_undirected)
        assert collector.congest, "no congest phases bridged"
        # The bridge mirrors *routed* traffic; Grover-search rounds are
        # charged analytically to the ledger without router deliveries, so
        # the bridged phases must match the ledger exactly phase-by-phase
        # but not cover the ledger's search entries.
        ledger = solution.ledger.snapshot()
        for phase, entry in collector.congest.items():
            assert entry["rounds"] == ledger[phase]
        bridged_rounds = sum(e["rounds"] for e in collector.congest.values())
        assert 0 < bridged_rounds < solution.rounds

    def test_rng_accounting_consistent(self, small_undirected):
        with telemetry.collect() as collector:
            solve(small_undirected)
            snapshot = collector.snapshot()
        assert snapshot["rng"]["draws"] > 0
        assert report.consistency_problems(snapshot) == []

    def test_phase_breakdown_from_real_run(self, small_undirected):
        with telemetry.collect() as collector:
            solve(small_undirected)
            breakdown = report.phase_breakdown(collector.snapshot())
        assert breakdown["schema"] == telemetry.SCHEMA
        assert EXPECTED_SPANS <= set(breakdown["phases"])
        assert all(entry["rounds"] >= 0 for entry in breakdown["congest"].values())


class TestNonInterference:
    def test_compute_pairs_byte_identical(self, small_undirected):
        plain = solve(small_undirected)
        with telemetry.collect():
            observed = solve(small_undirected)
        assert observed.pairs == plain.pairs
        assert observed.rounds == plain.rounds
        assert observed.ledger.snapshot() == plain.ledger.snapshot()
        assert observed.aborts == plain.aborts

    def test_service_stack_byte_identical(self, small_digraph):
        requests = [
            QueryRequest("dist", 0, 5),
            QueryRequest("path", 2, 7),
            QueryRequest("diameter"),
        ]

        def run():
            engine = QueryEngine(solver="reference")
            return [r.value for r in engine.query_batch(small_digraph, requests)]

        plain = run()
        with telemetry.collect() as collector:
            observed = run()
        assert observed == plain
        counters = collector.metrics.snapshot()["counters"]
        assert counters["queries.total"] == 3
        assert counters["queries.batches"] == 1
        assert counters["store.misses"] >= 1
        assert counters["jobs.submitted"] == 1


class TestServiceMetrics:
    def test_query_latency_histogram_populated(self, small_digraph):
        with telemetry.collect() as collector:
            engine = QueryEngine(solver="reference")
            engine.dist(small_digraph, 0, 3)
            engine.diameter(small_digraph)
        metrics = collector.metrics.snapshot()
        latency = metrics["histograms"]["queries.latency_seconds"]
        assert latency["count"] == 2
        assert metrics["counters"]["queries.dist"] == 1
        assert metrics["counters"]["queries.diameter"] == 1
        # Second query hits the store: one miss then one hit.
        assert metrics["counters"]["store.hits"] == 1

    def test_solver_spans_and_counters(self, small_digraph):
        with telemetry.collect() as collector:
            engine = QueryEngine(solver="reference")
            engine.dist(small_digraph, 0, 1)
        names = [record.name for record in collector.records]
        assert "solver.solve" in names
        assert "jobs.submit" in names
        assert "jobs.run" in names
        assert "queries.ensure_solved" in names
        counters = collector.metrics.snapshot()["counters"]
        assert counters["solver.solves"] == 1


def test_repro_stats_importable_offline():
    # The stats reader must not need a live collector.
    assert telemetry.active() is None
    assert callable(report.load_snapshot)
