"""Tests for the analytic round model, exponent fitting, and reporting."""

import math

import numpy as np
import pytest

from repro.analysis.complexity import RoundModel, fit_exponent
from repro.analysis.report import format_table


class TestFitExponent:
    def test_recovers_exact_power_law(self):
        sizes = [16, 64, 256, 1024]
        values = [3.0 * n ** 0.25 for n in sizes]
        exponent, coeff, r2 = fit_exponent(sizes, values)
        assert exponent == pytest.approx(0.25, abs=1e-9)
        assert coeff == pytest.approx(3.0, rel=1e-9)
        assert r2 == pytest.approx(1.0)

    def test_noisy_fit_close(self):
        rng = np.random.default_rng(0)
        sizes = [2 ** k for k in range(4, 14)]
        values = [5.0 * n ** (1 / 3) * rng.uniform(0.9, 1.1) for n in sizes]
        exponent, _, r2 = fit_exponent(sizes, values)
        assert abs(exponent - 1 / 3) < 0.05
        assert r2 > 0.98

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_exponent([4], [2.0])


class TestRoundModel:
    def test_leading_terms_cross_at_finite_n(self):
        model = RoundModel()
        crossover = model.leading_crossover_n()
        assert math.isfinite(crossover)
        n = max(16, int(crossover * 4))
        assert model.quantum_apsp_leading(n) < model.classical_apsp_leading(n)

    def test_full_model_crossover_is_log_dominated(self):
        # With every polylog kept, the quantum side's ~log⁴ extra factors
        # push the constant-explicit crossover beyond any physical n — the
        # honest reading of the paper's Õ(·) that E9 reports.
        model = RoundModel()
        assert model.crossover_n(limit=2.0 ** 50) == math.inf

    def test_classical_wins_at_small_n(self):
        model = RoundModel()
        assert model.quantum_apsp_rounds(64, 4) > model.classical_apsp_rounds(64, 4)

    def test_compute_pairs_exponent_is_quarter_plus_polylog(self):
        model = RoundModel()
        sizes = [2 ** k for k in range(20, 40, 2)]
        values = [model.compute_pairs_rounds(n) for n in sizes]
        exponent, _, _ = fit_exponent(sizes, values)
        # The polylog factors inflate the local slope above 1/4 but it must
        # stay clearly below the classical 1/3 + its own slack.
        assert 0.25 <= exponent < 0.5
        leading = [model.quantum_apsp_leading(n) for n in sizes]
        lead_exp, _, _ = fit_exponent(sizes, leading)
        assert lead_exp == pytest.approx(0.25, abs=1e-9)

    def test_dolev_exponent_is_third(self):
        model = RoundModel()
        sizes = [2 ** k for k in range(20, 40, 2)]
        values = [model.dolev_find_edges_rounds(n) for n in sizes]
        exponent, _, _ = fit_exponent(sizes, values)
        assert exponent == pytest.approx(1 / 3, abs=1e-6)

    def test_step3_search_crossover(self):
        # Grover's √|X| advantage inside Step 3 beats the linear scan once
        # n is moderately large (n^{1/4}·log n vs √n).
        model = RoundModel()
        assert model.grover_step3_rounds(2 ** 40) < model.linear_step3_rounds(2 ** 40)

    def test_loop_iterations_monotone(self):
        model = RoundModel()
        assert model.find_edges_loop_iterations(2 ** 10) <= model.find_edges_loop_iterations(2 ** 20)

    def test_log_w_factor(self):
        model = RoundModel()
        small_w = model.quantum_apsp_rounds(2 ** 16, 2)
        large_w = model.quantum_apsp_rounds(2 ** 16, 2 ** 20)
        assert large_w > small_w
        assert large_w / small_w < 10  # only a log factor apart


class TestFormatTable:
    def test_basic_render(self):
        table = format_table(
            ["n", "rounds"], [[16, 12.5], [256, 1.5e7]], title="demo"
        )
        assert "demo" in table
        assert "n" in table and "rounds" in table
        assert "12.5" in table
        assert "1.500e+07" in table

    def test_bool_cells(self):
        table = format_table(["ok"], [[True], [False]])
        assert "yes" in table and "no" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table
