"""Documentation hygiene: the paper map and architecture docs must not rot.

Thin wrapper around ``tools/check_docs.py`` so the tier-1 suite catches
broken links, dead paths, and renamed modules referenced by the docs; CI
additionally runs the tool standalone in the docs job.
"""

import pathlib
import sys

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import check_docs  # noqa: E402


def test_docs_are_clean(capsys):
    assert check_docs.main() == 0, capsys.readouterr().out


def test_paper_map_covers_numbered_claims():
    """Every numbered claim with an implementing module appears in the map."""
    text = (TOOLS.parent / "docs" / "PAPER_MAP.md").read_text()
    for claim in [
        "Theorem 1", "Theorem 2", "Theorem 3",
        "Lemma 1", "Lemma 2", "Lemma 3", "Lemma 4", "Lemma 5",
        "Proposition 1", "Proposition 2", "Proposition 3", "Proposition 5",
    ]:
        assert claim in text, f"PAPER_MAP.md lost {claim}"
