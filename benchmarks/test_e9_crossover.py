"""E9 — the quantum-advantage crossover figure.

Paper claim (implicit in Theorem 1 vs. the classical state of the art):
``Õ(n^{1/4} log W)`` beats ``Õ(n^{1/3} log W)`` asymptotically.

What this regenerates: the two round curves over an ``n`` sweep —
simulator-anchored at small ``n``, analytic beyond — and the crossover
analysis.  Two honest readings are reported:

* **leading terms** (``C_q·n^{1/4}`` vs ``C_c·n^{1/3}``): crossover at a
  modest ``n`` set by the constants' ratio;
* **full model** (every polylog kept): the quantum side carries ~log⁴ more
  factors, pushing the constant-explicit crossover beyond any physical
  ``n`` — the polylog price hidden in the paper's Õ(·).

Also included: the Step-3-only comparison (Grover ``Õ(n^{1/4})`` vs linear
scan ``O(√n)`` with identical evaluation costs), where the crossover is
near and visible.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import RoundModel, format_table

from benchmarks.conftest import write_result


def build_tables(model: RoundModel):
    rows = []
    for k in range(4, 41, 4):
        n = 2 ** k
        rows.append(
            [
                f"2^{k}",
                model.quantum_apsp_leading(n),
                model.classical_apsp_leading(n),
                model.quantum_apsp_rounds(n, 4),
                model.classical_apsp_rounds(n, 4),
            ]
        )
    return rows


def test_e9_crossover(benchmark):
    model = RoundModel()
    rows = build_tables(model)
    leading_cross = model.leading_crossover_n()
    full_cross = model.crossover_n(limit=2.0 ** 50)
    table = format_table(
        ["n", "q leading", "c leading", "q full", "c full"],
        rows,
        title=(
            "E9a  quantum vs classical APSP round curves\n"
            f"leading-term crossover: n ≈ {leading_cross:.3g}; "
            f"full-model crossover within 2^50: "
            f"{'none (polylog-dominated)' if math.isinf(full_cross) else full_cross:{'' if math.isinf(full_cross) else '.3g'}}"
        ),
    )
    write_result("e9a_crossover", table)

    # Leading terms must cross; full model must not (within 2^50).
    assert math.isfinite(leading_cross)
    big = max(16, int(leading_cross * 8))
    assert model.quantum_apsp_leading(big) < model.classical_apsp_leading(big)
    assert math.isinf(full_cross)

    # Step-3-only crossover: same polylog evaluation cost on both sides, so
    # the √-advantage shows at realistic n.
    rows = []
    crossover_k = None
    for k in range(4, 41, 2):
        n = 2 ** k
        grover = model.grover_step3_rounds(n)
        linear = model.linear_step3_rounds(n)
        if crossover_k is None and grover < linear:
            crossover_k = k
        rows.append([f"2^{k}", grover, linear, grover < linear])
    table = format_table(
        ["n", "grover step3", "linear step3", "quantum wins"],
        rows,
        title=(
            "E9b  Step 3 only (identical r): Grover Õ(n^{1/4}·r) vs scan O(√n·r)\n"
            f"first quantum win at n = 2^{crossover_k}"
        ),
    )
    write_result("e9b_step3_crossover", table)
    assert crossover_k is not None and crossover_k <= 40

    benchmark.pedantic(build_tables, args=(model,), rounds=1, iterations=1)
