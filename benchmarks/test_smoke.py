"""Smoke benchmarks — one small, fast unit per experiment family.

CI's ``bench-smoke`` job runs ``pytest benchmarks -k smoke`` so that builder
or solver regressions surface on every push without paying for the full
experiment sweeps.  Each test exercises the same code path as its family's
full experiment (E-file of the same number) at the smallest meaningful
size, asserting correctness, not performance.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import RoundModel
from repro.baselines.censor_hillel import distributed_minplus_product
from repro.congest.partitions import CliquePartitions
from repro.core.constants import PaperConstants
from repro.core.problems import FindEdgesInstance
from repro.matrix.semiring import distance_product
from repro.quantum import GroverAmplitudeTracker, MultiSearch, optimal_iterations


def smoke_instance(n=16, seed=3):
    graph = repro.random_undirected_graph(n, density=0.4, max_weight=5, rng=seed)
    return FindEdgesInstance(graph)


def test_smoke_e1_quantum_apsp():
    graph = repro.random_digraph_no_negative_cycle(8, density=0.5, max_weight=5, rng=3)
    backend = repro.QuantumFindEdges(constants=PaperConstants(scale=0.5), rng=3)
    report = repro.QuantumAPSP(backend=backend).solve(graph)
    assert np.array_equal(report.distances, repro.floyd_warshall(graph))
    assert report.rounds > 0


def test_smoke_e2_e3_find_edges():
    instance = smoke_instance()
    solution = repro.compute_pairs(instance, constants=PaperConstants(scale=0.5), rng=5)
    truth = instance.reference_solution()
    assert solution.pairs <= truth  # verification forbids false positives
    assert solution.rounds > 0


def test_smoke_e4_distance_product():
    rng = np.random.default_rng(2)
    a = rng.integers(-3, 8, size=(24, 24)).astype(float)
    product, ledger = distributed_minplus_product(a, a, rng=2)
    assert np.array_equal(product, distance_product(a, a))
    assert ledger.total > 0


def test_smoke_e5_grover():
    tracker = GroverAmplitudeTracker(64, 1)
    assert tracker.success_probability(optimal_iterations(64)) > 0.9


def test_smoke_e6_multisearch():
    rng = np.random.default_rng(7)
    table = rng.random((6, 5)) < 0.5
    table[0] = True  # at least one fully solvable search
    report = MultiSearch(5, marked_table=table, rng=7).run()
    solvable = table.any(axis=1)
    assert (report.found_mask() <= solvable).all()
    assert report.rounds > 0


def test_smoke_e7_e8_partitions_and_classes():
    partitions = CliquePartitions(81)
    assert partitions.num_coarse == 3 and partitions.num_fine == 9
    total = sum(len(block) for block in partitions.coarse.blocks())
    assert total == 81
    solution = repro.compute_pairs(
        smoke_instance(), constants=PaperConstants(scale=0.5), rng=1
    )
    assert max(solution.details["classes"]) >= 0


def test_smoke_e9_round_model():
    # The leading-term crossover E9 locates: C_q·n^{1/4} beats C_c·n^{1/3}
    # at some finite n (the polylog-laden full model never crosses — that
    # asymmetry is E9's headline finding, re-checked here in miniature).
    model = RoundModel()
    crossover = model.leading_crossover_n()
    assert np.isfinite(crossover)
    big = 4.0 * crossover
    assert model.quantum_apsp_leading(big) < model.classical_apsp_leading(big)


def test_smoke_e10_routing_and_step1():
    from repro.congest.network import CongestClique
    from repro.congest.router import route_rounds
    from repro.core.compute_pairs import _step1_load

    assert route_rounds(8, [8] * 8, [8] * 8) == 2.0
    network = CongestClique(16, rng=0)
    partitions = CliquePartitions(16)
    network.register_scheme("triple", partitions.triple_labels())
    _step1_load(network, partitions)
    assert network.ledger.rounds("compute_pairs.step1_load") == 8.0


def test_smoke_e11_scale_knob():
    solution = repro.compute_pairs(
        smoke_instance(), constants=PaperConstants(scale=0.2), rng=9
    )
    truth = smoke_instance().reference_solution()
    assert len(solution.pairs - truth) == 0


def test_smoke_e16_sssp():
    graph = repro.random_digraph_no_negative_cycle(12, density=0.5, max_weight=5, rng=4)
    report = repro.bellman_ford_distributed(graph, source=0, rng=4)
    assert np.array_equal(report.distances, repro.floyd_warshall(graph)[0])


def test_smoke_e13_e14_workload_and_step3():
    solution = repro.compute_pairs(
        smoke_instance(seed=11), constants=PaperConstants(scale=0.5), rng=11
    )
    assert solution.details["total_searches"] >= 0
    assert all(r >= 0 for r in solution.details["search_rounds_per_alpha"].values())


def test_smoke_a3_amplification():
    instance = smoke_instance(seed=6)
    truth = instance.reference_solution()
    solution = repro.compute_pairs(
        instance, constants=PaperConstants(scale=0.5), rng=6, amplification=12.0
    )
    assert solution.pairs <= truth
