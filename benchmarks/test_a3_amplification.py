"""Ablation A3 — the BBHT amplification knob.

The paper amplifies each search's success probability to ``1 − 1/m²`` by
"repeating the algorithm a logarithmic number of times"; this library
exposes that as ``amplification`` (repetitions =
``⌈amplification · log2 m⌉``).  This ablation sweeps the knob and measures
the failure rate and the round cost — the trade-off the constant hides:
too few repetitions break the w.h.p. guarantee, extra repetitions pay
linearly in rounds for exponentially diminishing returns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.quantum.multisearch import MultiSearch

from benchmarks.conftest import write_result

NUM_ITEMS = 8
NUM_SEARCHES = 24
TRIALS = 40


def failure_stats(amplification: float) -> tuple[float, float]:
    """(per-run failure rate, mean rounds) over TRIALS runs."""
    failures = 0
    rounds = 0.0
    for seed in range(TRIALS):
        rng = np.random.default_rng(seed)
        marked = [
            np.array([int(rng.integers(0, NUM_ITEMS))]) for _ in range(NUM_SEARCHES)
        ]
        search = MultiSearch(
            NUM_ITEMS,
            marked,
            beta=10_000.0,
            eval_rounds=3.0,
            amplification=amplification,
            rng=seed,
        )
        report = search.run(early_stop=False)
        failures += int(not report.found_mask().all())
        rounds += report.rounds
    return failures / TRIALS, rounds / TRIALS


def test_a3_amplification_tradeoff(benchmark):
    rows = []
    rates = {}
    for amplification in [0.25, 0.5, 1.0, 3.0, 12.0]:
        rate, mean_rounds = failure_stats(amplification)
        rates[amplification] = rate
        repetitions = int(np.ceil(amplification * np.log2(NUM_SEARCHES)))
        rows.append([amplification, repetitions, rate, mean_rounds])
    table = format_table(
        ["amplification", "repetitions", "failure rate", "mean rounds"],
        rows,
        title=(
            "A3  BBHT amplification ablation (m=24 searches over |X|=8)\n"
            "failure rate decays geometrically in repetitions; rounds grow linearly"
        ),
    )
    write_result("a3_amplification", table)

    # Monotone improvement, with the paper-grade setting essentially exact.
    # (Per repetition a search lands a *real* solution with p ≈ 0.21 here —
    # the dummy slot absorbs half the marked mass — so ~14 repetitions still
    # leave a few percent per-search failure across 24 searches; the default
    # amplification=12 drives the run-failure rate to zero.)
    assert rates[0.25] >= rates[3.0] >= rates[12.0]
    assert rates[12.0] == 0.0
    # Rounds grow with the knob.
    assert rows[-1][3] > rows[0][3]

    benchmark.pedantic(failure_stats, args=(1.0,), rounds=1, iterations=1)
