"""E17 — telemetry overhead contract (PR 6).

What this regenerates: the price of the observability plane at its two
operating points.  **Disabled** (no collector installed) every
instrumented site costs one attribute check plus a shared no-op context
manager; the benchmark times that path directly over many iterations to
get a per-site cost.  **Enabled**, full quantum ComputePairs solves run
under a collector and the span rollup yields, per instrumented phase,
how many sites fired and how much wall time the phase took.

The contract asserted here (and in the bench-smoke CI lane via
``test_smoke_e17_telemetry_overhead``): for every instrumented phase,

    ``site_count x per_site_disabled_cost  <  5% x phase_wall_seconds``

i.e. with telemetry *disabled*, the residual cost of the instrumentation
left in the hot paths is bounded below 5% of what each phase actually
spends.  The bound is deterministic — a microbenchmarked constant times
an exact span count — rather than a comparison of two noisy end-to-end
wall clocks, so it cannot flake on a loaded CI machine.  Phases shorter
than ``MIN_PHASE_WALL_S`` are priced in the table but exempt from the
assertion (a 2 µs span around a 40 µs phase is measurement noise, not a
hot path).

Byte-identity of the round tables with telemetry on vs. off is proved
separately in ``tests/test_telemetry_integration.py``; this file only
prices the plane.
"""

from __future__ import annotations

import time

import repro
from repro import telemetry
from repro.analysis import format_table
from repro.core.compute_pairs import compute_pairs
from repro.telemetry import report as telemetry_report

from benchmarks.conftest import write_metrics, write_result

SIZES = [16, 32]
PROBE_ITERATIONS = 200_000
OVERHEAD_BUDGET = 0.05  # the contract: disabled-path residue < 5% per phase
MIN_PHASE_WALL_S = 1e-3  # phases shorter than this are priced but exempt


def measure_disabled_site_cost(iterations: int) -> float:
    """Seconds per instrumented site with no collector installed.

    This is exactly what a ``with telemetry.span(...)`` site costs in
    production when nobody is observing: one attribute check in
    :func:`telemetry.span` plus entering/exiting the shared
    :data:`~repro.telemetry.NOOP_SPAN`.
    """
    assert telemetry.active() is None, "disabled-path probe needs no collector"
    start = time.perf_counter()
    for _ in range(iterations):
        with telemetry.span("e17.probe"):
            pass
    return (time.perf_counter() - start) / iterations


def contract_rows(rollup: dict, per_site_s: float) -> list[dict]:
    """Per-phase overhead bound from an enabled-run span rollup."""
    rows = []
    for name in sorted(rollup):
        phase = rollup[name]
        wall = phase["wall_seconds"]
        bound = phase["count"] * per_site_s
        rows.append(
            {
                "phase": name,
                "sites": phase["count"],
                "wall_seconds": wall,
                "bound_seconds": bound,
                "bound_fraction": bound / wall if wall > 0 else 0.0,
                "enforced": wall >= MIN_PHASE_WALL_S,
            }
        )
    return rows


def assert_contract(rows: list[dict]) -> None:
    violations = [
        f"{row['phase']}: {row['bound_fraction']:.2%} > {OVERHEAD_BUDGET:.0%}"
        for row in rows
        if row["enforced"] and row["bound_fraction"] >= OVERHEAD_BUDGET
    ]
    assert not violations, "telemetry overhead contract broken: " + "; ".join(
        violations
    )


def run_overhead_contract(sizes: list[int], probe_iterations: int):
    """Price the disabled path, then solve under the ambient collector."""
    collector = telemetry.active()
    assert collector is not None, "expects the autouse benchmark collector"
    telemetry.uninstall()
    try:
        per_site_s = measure_disabled_site_cost(probe_iterations)
    finally:
        telemetry.install(collector)

    records = []
    for n in sizes:
        graph = repro.random_undirected_graph(n, density=0.5, max_weight=8, rng=7)
        instance = repro.FindEdgesInstance(graph)
        start = time.perf_counter()
        solution = compute_pairs(instance, rng=5)
        wall = time.perf_counter() - start
        records.append({"n": n, "wall_seconds": wall, "rounds": solution.rounds})

    rollup = telemetry_report.rollup(collector.snapshot())
    rows = contract_rows(rollup, per_site_s)
    for record in records:
        record["per_site_cost_ns"] = per_site_s * 1e9
        record["max_bound_fraction"] = max(
            (row["bound_fraction"] for row in rows if row["enforced"]), default=0.0
        )
        record["instrumented_phases"] = len(rows)
    return per_site_s, rows, records


def render_table(per_site_s: float, rows: list[dict]) -> str:
    lines = [
        "E17 — telemetry overhead contract "
        f"(disabled site cost {per_site_s * 1e9:.0f} ns, budget "
        f"{OVERHEAD_BUDGET:.0%} per phase)",
        format_table(
            ["phase", "sites", "wall s", "bound s", "bound %", "enforced"],
            [
                [
                    row["phase"],
                    row["sites"],
                    f"{row['wall_seconds']:.4f}",
                    f"{row['bound_seconds']:.6f}",
                    f"{row['bound_fraction']:.3%}",
                    "yes" if row["enforced"] else "no (short)",
                ]
                for row in rows
            ],
        ),
    ]
    return "\n".join(lines)


def test_e17_telemetry_overhead(benchmark):
    per_site_s, rows, records = benchmark.pedantic(
        lambda: run_overhead_contract(SIZES, PROBE_ITERATIONS),
        rounds=1,
        iterations=1,
    )
    assert rows, "enabled solves produced no instrumented phases"
    assert_contract(rows)
    write_result("e17_telemetry_overhead", render_table(per_site_s, rows))
    write_metrics("e17_telemetry_overhead", records)


def test_smoke_e17_telemetry_overhead():
    """Bench-smoke lane: the 5% overhead contract on one small solve."""
    per_site_s, rows, records = run_overhead_contract([16], 20_000)
    assert per_site_s > 0
    assert any(row["phase"] == "compute_pairs" for row in rows)
    assert records[0]["rounds"] > 0
    assert_contract(rows)
