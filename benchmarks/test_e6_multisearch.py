"""E6 — Theorem 3 + Lemma 5: multiple searches on typical inputs.

Paper claims: with ``|X| < m/(36 log m)``, ``β > 8m/|X|`` and typical
solutions, the truncated-evaluation multi-search outputs a full solution
tuple with probability ≥ ``1 − 2/m²``; the atypical-subspace mass of any
``H_m`` state is below ``|X|·exp(−2m/(9|X|))`` (Lemma 5) and the state
deviation after ``k`` steps below ``2k·√(that)``.

What this regenerates:
  (a) exact joint-state simulations at small ``(m, |X|)`` measuring the
      true atypical mass and truncation deviation against both bounds;
  (b) success-rate sweeps over ``m`` with the typicality machinery on;
  (c) the failure mode when solutions are *not* typical (oracle truncation
      producing the predicted false negatives).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import format_table
from repro.quantum.multisearch import (
    MultiSearch,
    atypical_mass,
    exact_joint_state_simulation,
    lemma5_truncated_mass_bound,
    theorem3_fidelity_bound,
    uniform_atypical_mass,
)

from benchmarks.conftest import write_result


def joint_case(num_items: int, m: int, beta: float, iterations: int, seed: int):
    rng = np.random.default_rng(seed)
    marked = [np.array([int(rng.integers(0, num_items))]) for _ in range(m)]
    ideal, truncated, deviation = exact_joint_state_simulation(
        num_items, marked, beta=beta, iterations=iterations
    )
    return ideal, deviation


def test_e6_lemma5_and_theorem3(benchmark):
    # (a) exact joint simulation vs. the bounds.
    rows = []
    for num_items, m, beta, iterations in [
        (2, 8, 6, 2),
        (2, 10, 7, 3),
        (3, 8, 5, 2),
        (4, 6, 4, 2),
    ]:
        ideal, deviation = joint_case(num_items, m, beta, iterations, seed=1)
        mass = atypical_mass(ideal, beta)
        lemma5 = lemma5_truncated_mass_bound(num_items, m)
        thm3 = theorem3_fidelity_bound(num_items, m, iterations)
        tight = uniform_atypical_mass(num_items, m, beta)
        assert mass <= lemma5 + 1e-9
        assert deviation <= thm3 + 1e-9
        rows.append([num_items, m, beta, iterations, mass, tight, lemma5, deviation, thm3])
    table = format_table(
        ["|X|", "m", "β", "k", "atypical mass", "tight bound", "Lemma5", "‖Φ−Φ̃‖", "Thm3 bound"],
        rows,
        title="E6a  exact joint simulation vs Lemma 5 / Theorem 3 bounds",
    )
    write_result("e6a_lemma5_bounds", table)

    # (b) success rate with typical solutions across m.
    rows = []
    for m in [4, 16, 64]:
        failures = 0
        trials = 25
        for seed in range(trials):
            rng = np.random.default_rng(seed)
            marked = [np.array([int(rng.integers(0, 6))]) for _ in range(m)]
            search = MultiSearch(6, marked, beta=10_000.0, rng=seed)
            report = search.run()
            failures += int(not report.found_mask().all())
        bound = 2.0 / m**2
        rows.append([m, trials, failures, failures / trials, bound])
    table = format_table(
        ["m", "trials", "failed runs", "failure rate", "2/m² bound"],
        rows,
        title="E6b  multi-search success with typical solutions (Theorem 3)",
    )
    write_result("e6b_multisearch_success", table)
    assert all(row[2] <= 2 for row in rows)

    # (c) atypical solutions: truncation causes exactly the predicted
    # false negatives (≤ β/2 searches keep each overloaded item).
    rows = []
    for m, beta in [(12, 4.0), (20, 6.0)]:
        marked = [np.array([0]) for _ in range(m)]
        search = MultiSearch(4, marked, beta=beta, rng=3)
        report = search.run()
        keep = int(beta // 2)
        found = int(report.found_mask().sum())
        assert found <= keep
        rows.append([m, beta, keep, found, search.typicality.truncated_entries])
    table = format_table(
        ["m", "β", "keep budget β/2", "found", "truncated entries"],
        rows,
        title="E6c  atypical solutions: the truncated oracle's false negatives",
    )
    write_result("e6c_truncation_failures", table)

    benchmark.pedantic(joint_case, args=(3, 8, 5, 2, 2), rounds=1, iterations=1)
