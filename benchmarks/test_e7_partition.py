"""E7 — Lemma 2: the random covering ``Λx(u, v)`` is well-balanced and
covers ``P(u, v)`` with probability ≥ ``1 − 2/n``.

What this regenerates: empirical abort (balance-violation) rates and
coverage statistics of the Step-2 sampling across many seeds and sizes,
against the lemma's ``2/n`` budget; plus the A1 ablation — a deterministic
contiguous partition of ``P(u, v)`` (no randomness, no duplication) whose
per-vertex load blows past the well-balancedness cap, which is exactly why
the paper randomizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.congest.partitions import CliquePartitions
from repro.core.constants import PaperConstants

from benchmarks.conftest import write_result


def sample_statistics(n: int, constants: PaperConstants, trials: int, seed: int):
    """Simulate Step 2's sampling for one block pair across trials."""
    partitions = CliquePartitions(n)
    pairs = partitions.block_pairs(0, min(1, partitions.num_coarse - 1))
    rate = constants.lambda_rate(n)
    balance = constants.balance_bound(n)
    rng = np.random.default_rng(seed)
    violations = 0
    uncovered_pairs = 0
    total_pairs = 0
    for _ in range(trials):
        covered = np.zeros(len(pairs), dtype=bool)
        bad = False
        for _x in range(partitions.num_fine):
            mask = rng.random(len(pairs)) < rate
            covered |= mask
            chosen = pairs[mask]
            touching = np.concatenate([chosen[:, 0], chosen[:, 1]])
            if touching.size:
                _, counts = np.unique(touching, return_counts=True)
                if counts.max() > balance:
                    bad = True
        violations += int(bad)
        uncovered_pairs += int((~covered).sum())
        total_pairs += len(pairs)
    return violations / trials, uncovered_pairs / total_pairs, rate, balance


def deterministic_partition_max_load(n: int) -> tuple[float, float]:
    """A1 ablation: contiguous chunks of P(u, v) concentrate one vertex's
    pairs into few chunks — max per-vertex per-chunk load vs the cap."""
    partitions = CliquePartitions(n)
    pairs = partitions.block_pairs(0, min(1, partitions.num_coarse - 1))
    chunks = np.array_split(np.arange(len(pairs)), partitions.num_fine)
    constants = PaperConstants(scale=0.05)
    cap = constants.balance_bound(n)
    worst = 0
    for chunk in chunks:
        chosen = pairs[chunk]
        touching = np.concatenate([chosen[:, 0], chosen[:, 1]])
        if touching.size:
            _, counts = np.unique(touching, return_counts=True)
            worst = max(worst, int(counts.max()))
    return worst, cap


def test_e7_lemma2_balance_and_coverage(benchmark):
    constants = PaperConstants(scale=0.05)
    rows = []
    for n in [64, 256, 1024]:
        violation_rate, uncovered_rate, rate, balance = sample_statistics(
            n, constants, trials=60, seed=5
        )
        rows.append(
            [n, rate, balance, violation_rate, uncovered_rate, 2.0 / n]
        )
    table = format_table(
        ["n", "λ rate", "balance cap", "P[unbalanced]", "per-pair miss", "2/n budget"],
        rows,
        title=(
            "E7a  Lemma 2: well-balancedness and coverage of the random covering\n"
            "(at the paper's scale=1 the rate saturates to 1 for n ≤ ~10⁴ and both\n"
            "bad events are impossible; scale=0.05 shows the asymptotic behaviour:\n"
            "per-pair miss probability (1−rate)^√n decays with n)"
        ),
    )
    write_result("e7a_lemma2", table)
    # Bad events must be rare and shrinking as n grows.
    assert rows[-1][3] <= rows[0][3] + 0.05
    assert all(row[4] <= 0.05 for row in rows)
    assert rows[-1][4] <= rows[0][4]

    # A1 ablation: deterministic chunking violates the cap once the block
    # size n^{3/4} outgrows the n^{1/4}·log n balance budget.
    rows = []
    for n in [256, 1024, 4096]:
        worst, cap = deterministic_partition_max_load(n)
        rows.append([n, worst, cap, worst > cap])
    table = format_table(
        ["n", "max per-vertex chunk load", "balance cap", "violates"],
        rows,
        title=(
            "E7b (ablation A1)  deterministic contiguous partition of P(u,v):\n"
            "per-vertex loads concentrate and break the cap the random covering meets"
        ),
    )
    write_result("e7b_partition_ablation", table)
    assert any(row[3] for row in rows)

    benchmark.pedantic(
        sample_statistics, args=(256, constants, 10, 9), rounds=1, iterations=1
    )
