"""E18 — RNG consumption contracts: batched (v2) vs sequential-reference (v1).

What this regenerates: the full quantum ComputePairs solve at
``n ∈ {81, 256, 1296}`` (SIMULATION scale) under both RNG consumption
contracts — wall time, round charge, and generator-call counts.  The v2
contract re-orders randomness consumption (per repetition: one corruption
batch, one measurement batch, one slot batch per class; whole-segment
uniform chunks in Step 2) without changing the protocol, so the table
documents three things at once:

* the speedup of collapsing the per-lane generator walk into ≤3 batched
  calls per repetition (the generator-call column drops by orders of
  magnitude);
* the round-charge identity between the contracts in the simulation
  regime (equal ``rounds`` columns wherever some lane of every class runs
  the full schedule — all sizes here except the realization-dependent
  ``n = 1296`` early-finish class, which the table reports honestly);
* that v1 remains available end to end (it *is* the row being compared).

``test_e18_pr7_rng_v2_speedup`` additionally records the PR-7 acceptance
measurement: the ``n = 256`` quantum solve against the ~0.40 s PR-5/6
baseline, with the Step-3 repetition loop's profile share
(``results/pr7_rng_v2_speedup.txt``).
"""

from __future__ import annotations

import cProfile
import pstats
import time

import repro
from repro import telemetry
from repro.analysis import format_table
from repro.core.constants import PaperConstants
from repro.quantum.batched import RNG_CONTRACTS

from benchmarks.conftest import write_metrics, write_result

SIZES = [81, 256, 1296]
SCALE = 0.05  # the SIMULATION regime full solves run at


def build_instance(n: int):
    graph = repro.random_undirected_graph(n, density=0.4, max_weight=6, rng=3)
    return repro.FindEdgesInstance(graph)


def solve_counted(instance, contract: str):
    """One quantum solve under ``contract`` with a private collector (the
    ambient benchmark collector is swapped out so the generator-call count
    covers exactly this solve)."""
    ambient = telemetry.uninstall()
    try:
        with telemetry.collect() as collector:
            start = time.perf_counter()
            solution = repro.compute_pairs(
                instance,
                constants=PaperConstants(scale=SCALE),
                rng=5,
                rng_contract=contract,
            )
            wall = time.perf_counter() - start
            rng = collector.snapshot()["rng"]
    finally:
        if ambient is not None:
            telemetry.install(ambient)
    return solution, wall, rng


def test_e18_rng_contracts(benchmark):
    rows = []
    metrics = []
    for n in SIZES:
        instance = build_instance(n)
        outcomes = {}
        for contract in RNG_CONTRACTS:
            solution, wall, rng = solve_counted(instance, contract)
            outcomes[contract] = (solution, wall, rng)
            metrics.append(
                {
                    "n": n,
                    "rng_contract": contract,
                    "wall_seconds": round(wall, 4),
                    "rounds": solution.rounds,
                    "rng_calls": rng["calls"],
                    "rng_draws": rng["draws"],
                }
            )
        v1, v1_wall, v1_rng = outcomes["v1"]
        v2, v2_wall, v2_rng = outcomes["v2"]
        # Same protocol, same verified detections; the batched contract
        # must collapse the generator-call count by well over an order of
        # magnitude (the draws stay within Step 2's chunk-alignment slack).
        assert v2.pairs == v1.pairs
        assert v2_rng["calls"] < v1_rng["calls"] / 10
        rows.append(
            [
                n,
                round(v1_wall, 3),
                round(v2_wall, 3),
                round(v1_wall / v2_wall, 2),
                v1.rounds,
                v2.rounds,
                "yes" if v1.rounds == v2.rounds else "no",
                v1_rng["calls"],
                v2_rng["calls"],
            ]
        )
    table = format_table(
        [
            "n",
            "v1 wall s",
            "v2 wall s",
            "speedup",
            "v1 rounds",
            "v2 rounds",
            "rounds equal",
            "v1 rng calls",
            "v2 rng calls",
        ],
        rows,
        title=(
            "E18  RNG consumption contracts: batched v2 vs sequential v1\n"
            f"full quantum ComputePairs at scale={SCALE}; identical found\n"
            "pairs asserted per size.  Round charges coincide whenever some\n"
            "lane of every class runs the whole schedule; where every lane\n"
            "of a class finishes early the max-lane charge is realization-\n"
            "dependent and the contracts may legitimately differ (the\n"
            "'rounds equal: no' rows) — distributional equivalence is\n"
            "property-tested in tests/test_rng_contract_v2.py."
        ),
    )
    write_result("e18_rng_contracts", table)
    write_metrics("e18_rng_contracts", metrics)

    benchmark.pedantic(
        solve_counted, args=(build_instance(81), "v2"), rounds=1, iterations=1
    )


def test_e18_pr7_rng_v2_speedup():
    # Acceptance: the n = 256 quantum solve — PR 5/6 left it at ~0.40 s
    # with the per-lane-RNG lockstep repetition loop as the dominant
    # residual.  The v2 contract must beat the v1 wall clearly and the
    # repetition loop must no longer dominate the profile.  Profiled with
    # telemetry uninstalled (e15's convention): per-draw accounting would
    # inflate exactly the loop being measured.
    instance = build_instance(256)
    ambient = telemetry.uninstall()
    try:
        def once(contract: str):
            start = time.perf_counter()
            solution = repro.compute_pairs(
                instance, constants=PaperConstants(scale=SCALE), rng=5,
                rng_contract=contract,
            )
            return solution, time.perf_counter() - start

        # Interleaved best-of-3 per contract so ambient load drift (the
        # suite runs under parallel CI) hits both contracts alike.
        v1_wall = v2_wall = 1e9
        for _ in range(3):
            v1, wall = once("v1")
            v1_wall = min(v1_wall, wall)
            v2, wall = once("v2")
            v2_wall = min(v2_wall, wall)
        # Separate profiled run for the breakdown: cProfile's per-call tax
        # is a real fraction of a sub-half-second solve, so the wall-clock
        # comparison above stays unprofiled and shares below are computed
        # against the profiled run's own total.
        profile = cProfile.Profile()
        start = time.perf_counter()
        profile.enable()
        repro.compute_pairs(
            instance, constants=PaperConstants(scale=SCALE), rng=5,
            rng_contract="v2",
        )
        profile.disable()
        profiled_wall = time.perf_counter() - start
    finally:
        if ambient is not None:
            telemetry.install(ambient)

    def cumulative(suffix: str, module: str = "repro") -> float:
        stats = pstats.Stats(profile)
        for (filename, _line, name), entry in stats.stats.items():
            if name == suffix and module in filename:
                return entry[3]  # cumulative seconds
        return 0.0

    loop_cum = cumulative("_run_v2", module="quantum/batched.py")
    step3_cum = cumulative("run_step3")
    step2_cum = cumulative("_step2_sample")
    assert v2.pairs == v1.pairs
    assert v2.rounds == v1.rounds  # n = 256 sits in the identity regime
    # The contract change must pay for itself on the same machine, same
    # run: v2 beats the v1 floor, and the repetition loop is a minority
    # share instead of the residual bottleneck PR 5 measured.
    assert v2_wall < v1_wall
    loop_share = loop_cum / profiled_wall
    assert loop_share < 0.45

    lines = [
        "PR 7  batched RNG consumption contract (v2): per repetition the",
        "class draws one corruption batch, one flat measurement batch over",
        "every pending search of every non-corrupted lane, and one slot",
        "batch — ≤3 generator calls per repetition instead of a per-lane",
        "generator walk — plus whole-segment uniform chunks in Step 2.",
        "Sequential consumption survives as rng_contract='v1'",
        "(core/_reference.py is its definition); equivalence is",
        "property-tested in tests/test_rng_contract_v2.py.",
        f"ComputePairs n=256 (quantum, scale={SCALE}): v1 {v1_wall:.2f} s →",
        f"v2 {v2_wall:.2f} s ({v1_wall / v2_wall:.2f}x, identical rounds and",
        f"pairs).  Profiled v2 run ({profiled_wall:.2f} s under cProfile):",
        f"step2 {step2_cum:.2f} s, step3 {step3_cum:.2f} s of which the",
        f"cross-lane repetition loop is {loop_cum:.2f} s ({100 * loop_share:.0f}%",
        "of the solve) — no longer the dominant residual the PR-5 profile",
        "left (0.40 s solve, per-lane loop dominant).",
    ]
    write_result("pr7_rng_v2_speedup", "\n".join(lines))
    write_metrics(
        "pr7_rng_v2_speedup",
        [
            {
                "n": 256,
                "wall_seconds": round(v2_wall, 4),
                "rounds": v2.rounds,
                "v1_wall_seconds": round(v1_wall, 4),
                "speedup": round(v1_wall / v2_wall, 3),
                "profiled_wall_seconds": round(profiled_wall, 4),
                "step2_cumulative_seconds": round(step2_cum, 4),
                "step3_cumulative_seconds": round(step3_cum, 4),
                "search_loop_cumulative_seconds": round(loop_cum, 4),
                "search_loop_share": round(loop_share, 3),
            }
        ],
    )


def test_smoke_e18_rng_contracts():
    # Both contracts on one small pipeline instance: identical detections,
    # identical round charge, and the batched contract's generator-call
    # collapse — the cheap CI tripwire for the full contract suite.
    instance = build_instance(81)
    v1, _wall1, rng1 = solve_counted(instance, "v1")
    v2, _wall2, rng2 = solve_counted(instance, "v2")
    assert v2.pairs == v1.pairs
    assert v2.rounds == v1.rounds
    assert rng2["calls"] < rng1["calls"] / 10
