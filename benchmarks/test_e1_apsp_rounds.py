"""E1 — Theorem 1 headline: end-to-end APSP round counts.

Paper claim: quantum APSP runs in ``Õ(n^{1/4} log W)`` rounds vs. the
classical ``Õ(n^{1/3} log W)`` (Censor-Hillel et al.), with the output
correct w.h.p.

What this regenerates: for a sweep of graph sizes, the measured simulator
rounds of (a) the full quantum solver, (b) the Dolev-backed classical
triangle solver through the same reduction stack, (c) the direct
Censor-Hillel semiring baseline — plus correctness against Floyd–Warshall
and the analytic model's predictions.  At simulation sizes the *absolute*
winner is the classical baseline (the quantum side's polylog factors and
constants dominate — see E9 for the crossover analysis); the reproduced
shape is the exponent gap visible in the fitted slopes and the model.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.analysis import RoundModel, fit_exponent, format_table
from repro.core.constants import PaperConstants

from benchmarks.conftest import write_metrics, write_result

SIZES = [8, 12, 16]
CONSTANTS = PaperConstants(scale=0.5)
MAX_WEIGHT = 6


def run_quantum(n: int, seed: int):
    graph = repro.random_digraph_no_negative_cycle(
        n, density=0.5, max_weight=MAX_WEIGHT, rng=seed
    )
    truth = repro.floyd_warshall(graph)
    # Pinned to the v1 consumption contract: this table documents round
    # counts, and at scale 0.5 / tiny n some classes have solutions in every
    # search, so every lane can finish before the schedule ends and the
    # max-lane charge depends on the measurement realization — the one
    # regime where the contracts' (identically distributed) charges may
    # differ.  v1 keeps the committed column byte-stable.
    backend = repro.QuantumFindEdges(constants=CONSTANTS, rng=seed, rng_contract="v1")
    report = repro.QuantumAPSP(backend=backend).solve(graph)
    return graph, truth, report


def test_e1_apsp_rounds(benchmark):
    model = RoundModel()
    rows = []
    quantum_rounds = []
    classical_rounds = []
    metrics = []
    for n in SIZES:
        start = time.perf_counter()
        graph, truth, q_report = run_quantum(n, seed=7)
        wall = time.perf_counter() - start
        metrics.append(
            {"n": n, "wall_seconds": round(wall, 4), "rounds": q_report.rounds}
        )
        dolev = repro.QuantumAPSP(backend=repro.DolevFindEdges(rng=7)).solve(graph)
        ch = repro.CensorHillelAPSP(rng=7).solve(graph)
        assert np.array_equal(q_report.distances, truth)
        assert np.array_equal(dolev.distances, truth)
        assert np.array_equal(ch.distances, truth)
        quantum_rounds.append(q_report.rounds)
        classical_rounds.append(ch.rounds)
        rows.append(
            [
                n,
                q_report.rounds,
                dolev.rounds,
                ch.rounds,
                model.quantum_apsp_rounds(n, MAX_WEIGHT),
                model.classical_apsp_rounds(n, MAX_WEIGHT),
                True,
            ]
        )

    q_exp, _, _ = fit_exponent(SIZES, quantum_rounds)
    c_exp, _, _ = fit_exponent(SIZES, classical_rounds)
    table = format_table(
        ["n", "quantum", "dolev-apsp", "censor-hillel", "model-q", "model-c", "exact"],
        rows,
        title=(
            "E1  end-to-end APSP rounds (Theorem 1)\n"
            f"fitted exponent: quantum={q_exp:.2f}, censor-hillel={c_exp:.2f} "
            "(paper: 1/4 vs 1/3 up to polylogs; small-n fits are "
            "polylog-inflated — see E2/E9 for the asymptotic shape)"
        ),
    )
    write_result("e1_apsp_rounds", table)
    write_metrics("e1_apsp_rounds", metrics)

    # All solvers correct on every size; benchmark one quantum solve.
    benchmark.pedantic(run_quantum, args=(8, 3), rounds=1, iterations=1)
