"""E3 — Proposition 1: FindEdges from ``O(log n)`` promise instances.

Paper claim: Algorithm B's sampling loop removes high-``Γ`` pairs early so
every ComputePairs call sees the promise satisfied, at an ``O(log n)``
multiplicative round cost, with success ``1 − O((ε + 1/n³) log n)``.

What this regenerates: instances whose planted pairs sit in *many*
negative triangles (promise violated globally), solved by the Prop. 1
wrapper with a sampling factor small enough that the loop actually runs;
the table reports loop iterations, per-call promise status, and exactness.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import format_table
from repro.core.constants import PaperConstants
from repro.core.problems import FindEdgesInstance

from benchmarks.conftest import write_result

#: Sampling factor forced low so the loop engages at n = 36..100.
CONSTANTS = PaperConstants(scale=0.3, findedges_sample_factor=2.0)


def run_case(n: int, triangles_per_pair: int, seed: int):
    graph, planted = repro.planted_negative_triangle_graph(
        n, num_planted=3, triangles_per_pair=triangles_per_pair, rng=seed
    )
    instance = FindEdgesInstance(graph)
    backend = repro.QuantumFindEdges(constants=CONSTANTS, rng=seed)
    solution = backend.find_edges(instance)
    return instance, planted, solution


def test_e3_find_edges_reduction(benchmark):
    rows = []
    for n, per_pair in [(36, 10), (36, 30), (64, 40), (100, 60)]:
        instance, planted, solution = run_case(n, per_pair, seed=3)
        truth = instance.reference_solution()
        max_gamma = instance.max_scope_triangle_count()
        promise_bound = CONSTANTS.promise_bound(n)
        exact = solution.pairs == truth
        assert planted <= solution.pairs
        assert solution.pairs <= truth
        rows.append(
            [
                n,
                per_pair,
                max_gamma,
                promise_bound,
                max_gamma > promise_bound,
                solution.details["loop_iterations"],
                solution.details["promise_calls"],
                solution.rounds,
                exact,
            ]
        )

    table = format_table(
        [
            "n",
            "planted/pair",
            "max Γ",
            "promise",
            "violated",
            "loop iters",
            "calls",
            "rounds",
            "exact",
        ],
        rows,
        title=(
            "E3  FindEdges via Proposition 1 (promise-violating instances)\n"
            "loop iterations ≈ log2(n / (sample·log n)) + 1; every output exact"
        ),
    )
    write_result("e3_find_edges_reduction", table)

    # The loop must actually have engaged on these workloads.
    assert all(row[5] >= 1 for row in rows)
    benchmark.pedantic(run_case, args=(36, 10, 5), rounds=1, iterations=1)
