"""E12 (scheme + Step-2 scale) — the zero-object hot paths of PR 4.

What this regenerates: wall time of labeling-scheme registration (the
triple scheme and a bandwidth-duplication scheme) and of the Step-2
sampling pass at ``n ∈ {81, 256, 625, 1296}``, measured against the eager
one-Node-per-label and per-search-node loop forms preserved in
``repro.core._reference`` — the registration must allocate zero ``Node``
objects up front and Step-2 must charge identical rounds to the loop form.

``test_e12_pr4_zero_object_speedup`` additionally records the PR-4
acceptance measurements: ``register_scheme`` at ``n = 2048`` (eager vs
lazy, ≥ 3×) and the ``n = 256`` ComputePairs profile showing Step 2 is no
longer the dominant entry (``results/pr4_zero_object_speedup.txt``).
"""

from __future__ import annotations

import cProfile
import pstats
import time

import numpy as np
import pytest

import repro
from repro.analysis import format_table
from repro.congest.network import CongestClique
from repro.congest.partitions import CliquePartitions, ProductLabels
from repro.core import _reference as reference
from repro.core.compute_pairs import _step2_sample
from repro.core.constants import PaperConstants
from repro.core.evaluation import block_two_hop
from repro.core.problems import FindEdgesInstance
from repro.util.rng import spawn_rng

from benchmarks.conftest import write_metrics, write_result

SIZES = [81, 256, 625, 1296]
SCALE = 0.05  # the SIMULATION regime full solves run at
DUPLICATION = 4


def register_timings(n: int) -> dict:
    """Wall time of lazy vs eager registration for the triple scheme and a
    duplication-style scheme (labels built the way quantum_step3 builds
    them), plus the up-front Node count of the lazy path."""
    partitions = CliquePartitions(n)
    labels = partitions.triple_labels()
    triples = list(labels)

    lazy_net = CongestClique(n, rng=0)
    start = time.perf_counter()
    view = lazy_net.register_scheme("triple", partitions.triple_labels())
    dup_view = lazy_net.register_scheme(
        "dup", ProductLabels(triples, DUPLICATION)
    )
    lazy_wall = time.perf_counter() - start
    materialized = view.materialized_nodes + dup_view.materialized_nodes

    eager_net = CongestClique(n, rng=0)
    start = time.perf_counter()
    eager = reference.register_scheme_eager(eager_net, "triple", triples)
    reference.register_scheme_eager(
        eager_net, "dup",
        [triple + (y,) for triple in triples for y in range(DUPLICATION)],
    )
    eager_wall = time.perf_counter() - start

    # Same parent stream and same placements either way.
    assert np.array_equal(lazy_net.rng.random(4), eager_net.rng.random(4))
    probe = triples[len(triples) // 2]
    assert view[probe].physical == eager[probe].physical
    return {
        "labels": len(labels) * (1 + DUPLICATION),
        "lazy_wall": lazy_wall,
        "eager_wall": eager_wall,
        "materialized": materialized,
    }


def step2_environment(n: int, seed: int, two_hop_cache: dict):
    graph = repro.random_undirected_graph(n, density=0.4, max_weight=6, rng=3)
    instance = FindEdgesInstance(graph)
    constants = PaperConstants(scale=SCALE)
    rng = np.random.default_rng(seed)
    network = CongestClique(n, rng=spawn_rng(rng))
    partitions = CliquePartitions(n)
    network.register_scheme("triple", partitions.triple_labels())
    network.register_scheme("search", partitions.search_labels())

    def two_hop_for(bu, bv):
        if (bu, bv) not in two_hop_cache:
            two_hop_cache[(bu, bv)] = block_two_hop(
                graph.weights,
                partitions.coarse.block(bu),
                partitions.coarse.block(bv),
                partitions.fine.blocks(),
            )
        return two_hop_cache[(bu, bv)]

    return network, partitions, instance, constants, rng, two_hop_for


def step2_timings(n: int) -> dict:
    """Segmented pass vs per-node loop on one seeded instance, with the
    node-local two-hop tensors pre-built (they are Step-1 state, not
    Step-2 work); identical round charges asserted."""
    cache: dict = {}
    warm = step2_environment(n, 5, cache)
    partitions, two_hop_for = warm[1], warm[5]
    for bu in range(partitions.num_coarse):
        for bv in range(partitions.num_coarse):
            two_hop_for(bu, bv)

    # Best of two alternating trials per form — single runs on shared
    # hardware are noisy at the larger sizes.
    segmented_walls, loop_walls, ledgers = [], [], []
    for _ in range(2):
        env = step2_environment(n, 5, cache)
        start = time.perf_counter()
        _step2_sample(*env)
        segmented_walls.append(time.perf_counter() - start)
        ledgers.append(env[0].ledger.snapshot())

        env = step2_environment(n, 5, cache)
        start = time.perf_counter()
        reference.step2_sample_loops(*env)
        loop_walls.append(time.perf_counter() - start)
        ledgers.append(env[0].ledger.snapshot())
    assert all(ledger == ledgers[0] for ledger in ledgers[1:])

    rounds = sum(ledgers[0].values())
    return {
        "segmented_wall": min(segmented_walls),
        "loop_wall": min(loop_walls),
        "rounds": rounds,
    }


def test_e12_step2_scheme_scale(benchmark):
    rows = []
    metrics = []
    for n in SIZES:
        register = register_timings(n)
        step2 = step2_timings(n)
        assert register["materialized"] == 0
        rows.append(
            [
                n,
                register["labels"],
                round(register["eager_wall"] * 1e3, 2),
                round(register["lazy_wall"] * 1e3, 3),
                round(step2["loop_wall"] * 1e3, 1),
                round(step2["segmented_wall"] * 1e3, 1),
                step2["rounds"],
            ]
        )
        metrics.append(
            {
                "n": n,
                "wall_seconds": round(step2["segmented_wall"], 4),
                "rounds": step2["rounds"],
                "step2_loop_wall_seconds": round(step2["loop_wall"], 4),
                "register_wall_seconds": round(register["lazy_wall"], 6),
                "register_eager_wall_seconds": round(register["eager_wall"], 6),
                "register_labels": register["labels"],
                "materialized_nodes": register["materialized"],
            }
        )
    table = format_table(
        [
            "n",
            "labels",
            "reg eager ms",
            "reg lazy ms",
            "step2 loop ms",
            "step2 seg ms",
            "step2 rounds",
        ],
        rows,
        title=(
            "E12  zero-object hot paths at scale\n"
            "scheme registration (triple + 4x duplication): eager Node-per-"
            "label loop\nvs lazy array-backed views (0 Nodes up front); "
            "Step-2 sampling: per-node\nloop form vs one segmented pass "
            f"(scale={SCALE}); identical round charges\nasserted per size"
        ),
    )
    write_result("e12_step2_scheme_scale", table)
    write_metrics("e12_step2_scheme_scale", metrics)

    benchmark.pedantic(step2_timings, args=(81,), rounds=1, iterations=1)


def test_e12_pr4_zero_object_speedup():
    # Acceptance 1: register_scheme at n = 2048 — O(1) Node objects up
    # front and >= 3x wall time against the eager loop.
    n = 2048
    register = register_timings(n)
    assert register["materialized"] == 0
    register_speedup = register["eager_wall"] / register["lazy_wall"]
    assert register_speedup >= 3.0

    # Acceptance 2: the full quantum ComputePairs solve at n = 256
    # completes with Step 2 no longer the dominant profile entry.
    graph = repro.random_undirected_graph(256, density=0.4, max_weight=6, rng=3)
    instance = FindEdgesInstance(graph)
    profile = cProfile.Profile()
    start = time.perf_counter()
    profile.enable()
    solution = repro.compute_pairs(
        instance, constants=PaperConstants(scale=SCALE), rng=5
    )
    profile.disable()
    total_wall = time.perf_counter() - start

    def cumulative(suffix: str) -> float:
        stats = pstats.Stats(profile)
        for (filename, _line, name), entry in stats.stats.items():
            if name == suffix and "repro" in filename:
                return entry[3]  # cumulative seconds
        return 0.0

    step2_cum = cumulative("_step2_sample")
    step3_cum = cumulative("run_step3")
    assert solution.rounds > 0
    assert step2_cum < step3_cum, "step 2 may not dominate the search phase"
    assert step2_cum < 0.5 * total_wall

    lines = [
        "PR 4  zero-object hot paths: array-backed schemes + one-pass Step-2",
        "register_scheme: lazy array-backed SchemeView (labels symbolic,",
        "seeds one batched draw, Nodes on first touch) vs the eager",
        "Node-per-label loop preserved in core/_reference.py; identical",
        "seeds, streams, and placements (tests/test_step2_equivalence.py).",
        f"n=2048 triple + 4x duplication schemes ({register['labels']} labels):",
        f"eager {register['eager_wall']*1e3:.2f} ms -> lazy "
        f"{register['lazy_wall']*1e3:.3f} ms "
        f"({register_speedup:.0f}x, acceptance >= 3x), 0 Nodes materialized.",
        "step2: one segmented pass over the coarse block pairs (all sqrt(n)",
        "search nodes of a segment vectorized per stage, witness tables",
        "gathered in cache-sized chunks) vs the per-node loop form;",
        "byte-identical outputs and round charges property-tested at",
        "n in {16, 48, 128} and asserted per e12 size.",
        f"ComputePairs n=256 (quantum, scale={SCALE}): total "
        f"{total_wall:.2f} s, step2 {step2_cum:.2f} s "
        f"({100 * step2_cum / total_wall:.0f}%), step3 search "
        f"{step3_cum:.2f} s ({100 * step3_cum / total_wall:.0f}%) — "
        "step 2 is no longer the dominant profile entry.",
    ]
    write_result("pr4_zero_object_speedup", "\n".join(lines))
    write_metrics(
        "pr4_zero_object_speedup",
        [
            {
                "n": 2048,
                "wall_seconds": round(register["lazy_wall"], 6),
                "rounds": None,
                "register_eager_wall_seconds": round(register["eager_wall"], 6),
                "register_speedup": round(register_speedup, 1),
                "materialized_nodes": register["materialized"],
            },
            {
                "n": 256,
                "wall_seconds": round(total_wall, 4),
                "rounds": solution.rounds,
                "step2_cumulative_seconds": round(step2_cum, 4),
                "step3_cumulative_seconds": round(step3_cum, 4),
            },
        ],
    )


def test_smoke_e12_scheme_and_step2():
    # Registration allocates no Nodes and preserves the eager stream; the
    # segmented Step-2 matches the loop form's outputs and charges.
    n = 81
    register = register_timings(n)
    assert register["materialized"] == 0

    cache: dict = {}
    env = step2_environment(n, 9, cache)
    node_pairs, coverage = _step2_sample(*env)
    ledger = env[0].ledger.snapshot()
    env = step2_environment(n, 9, cache)
    loop_pairs, loop_coverage = reference.step2_sample_loops(*env)
    assert env[0].ledger.snapshot() == ledger
    assert coverage == loop_coverage
    assert list(node_pairs) == list(loop_pairs)
    for label, (pairs, weights, table) in loop_pairs.items():
        got_pairs, got_weights, got_table = node_pairs[label]
        assert np.array_equal(got_pairs, pairs)
        assert np.array_equal(got_weights, weights)
        assert np.array_equal(got_table, table)
