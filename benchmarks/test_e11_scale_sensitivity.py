"""E11 — sensitivity to the constants' scale knob.

The paper's constants (`90 log n`, `10 log n/√n`, ...) are asymptotic; the
library's ``scale`` knob shrinks them coherently so the machinery engages
at simulation sizes (DESIGN.md, "Key design decisions").  This experiment
sweeps the knob at fixed ``n`` and reports what each regime does to
correctness and cost — documenting that the default simulation scales sit
on the flat (correct) part of the curve:

* large scale → sampling rates saturate, coverage is certain, rounds peak;
* small scale → rounds shrink but coverage gaps appear as misses
  (never false positives — verification is unconditional).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import format_table
from repro.core.constants import PaperConstants
from repro.core.problems import FindEdgesInstance

from benchmarks.conftest import write_result

N = 81


def run_at_scale(scale: float, seed: int):
    graph = repro.random_undirected_graph(N, density=0.3, max_weight=6, rng=seed)
    instance = FindEdgesInstance(graph)
    solution = repro.compute_pairs(
        instance, constants=PaperConstants(scale=scale), rng=seed
    )
    truth = instance.reference_solution()
    return solution, truth


def test_e11_scale_sensitivity(benchmark):
    rows = []
    miss_by_scale = {}
    for scale in [0.01, 0.05, 0.2, 1.0]:
        solution, truth = run_at_scale(scale, seed=4)
        false_pos = len(solution.pairs - truth)
        missed = len(truth - solution.pairs)
        miss_by_scale[scale] = missed / max(1, len(truth))
        rows.append(
            [
                scale,
                solution.rounds,
                len(truth),
                false_pos,
                missed,
                solution.details["coverage"],
                max(solution.details["classes"]),
            ]
        )
    table = format_table(
        ["scale", "rounds", "truth", "false+", "missed", "coverage", "max class"],
        rows,
        title=(
            f"E11  scale-knob sensitivity at n={N}\n"
            "verification forbids false positives at every scale; misses are\n"
            "coverage gaps that close as the sampling rates approach the paper's"
        ),
    )
    write_result("e11_scale_sensitivity", table)

    assert all(row[3] == 0 for row in rows)  # never false positives
    assert miss_by_scale[1.0] == 0.0         # paper constants: exact
    assert miss_by_scale[1.0] <= miss_by_scale[0.01]

    benchmark.pedantic(run_at_scale, args=(0.05, 5), rounds=1, iterations=1)
