"""E11 — sensitivity to the constants' scale knob.

The paper's constants (`90 log n`, `10 log n/√n`, ...) are asymptotic; the
library's ``scale`` knob shrinks them coherently so the machinery engages
at simulation sizes (DESIGN.md, "Key design decisions").  This experiment
sweeps the knob at fixed ``n`` and reports what each regime does to
correctness and cost — documenting that the default simulation scales sit
on the flat (correct) part of the curve:

* large scale → sampling rates saturate, coverage is certain, rounds peak;
* small scale → rounds shrink but coverage gaps appear as misses
  (never false positives — verification is unconditional).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.analysis import format_table
from repro.congest.network import CongestClique
from repro.congest.partitions import CliquePartitions
from repro.core import _reference
from repro.core.compute_pairs import step1_batch
from repro.core.constants import PaperConstants
from repro.core.problems import FindEdgesInstance

from benchmarks.conftest import write_metrics, write_result

N = 81


def run_at_scale(scale: float, seed: int):
    graph = repro.random_undirected_graph(N, density=0.3, max_weight=6, rng=seed)
    instance = FindEdgesInstance(graph)
    solution = repro.compute_pairs(
        instance, constants=PaperConstants(scale=scale), rng=seed
    )
    truth = instance.reference_solution()
    return solution, truth


def test_e11_scale_sensitivity(benchmark):
    rows = []
    miss_by_scale = {}
    metrics = []
    for scale in [0.01, 0.05, 0.2, 1.0]:
        start = time.perf_counter()
        solution, truth = run_at_scale(scale, seed=4)
        metrics.append(
            {
                "n": N,
                "wall_seconds": round(time.perf_counter() - start, 4),
                "rounds": solution.rounds,
                "scale": scale,
            }
        )
        false_pos = len(solution.pairs - truth)
        missed = len(truth - solution.pairs)
        miss_by_scale[scale] = missed / max(1, len(truth))
        rows.append(
            [
                scale,
                solution.rounds,
                len(truth),
                false_pos,
                missed,
                solution.details["coverage"],
                max(solution.details["classes"]),
            ]
        )
    table = format_table(
        ["scale", "rounds", "truth", "false+", "missed", "coverage", "max class"],
        rows,
        title=(
            f"E11  scale-knob sensitivity at n={N}\n"
            "verification forbids false positives at every scale; misses are\n"
            "coverage gaps that close as the sampling rates approach the paper's"
        ),
    )
    write_result("e11_scale_sensitivity", table)
    write_metrics("e11_scale_sensitivity", metrics)

    assert all(row[3] == 0 for row in rows)  # never false positives
    assert miss_by_scale[1.0] == 0.0         # paper constants: exact
    assert miss_by_scale[1.0] <= miss_by_scale[0.01]

    benchmark.pedantic(run_at_scale, args=(0.05, 5), rounds=1, iterations=1)


def step1_wall(n: int, builder) -> tuple[float, float]:
    """(wall seconds, charged rounds) of building + delivering the Step-1
    gather with the given builder on a fresh clique."""
    network = CongestClique(n, rng=0)
    partitions = CliquePartitions(n)
    network.register_scheme("triple", partitions.triple_labels())
    start = time.perf_counter()
    batch = builder(partitions)
    network.deliver(
        batch, "compute_pairs.step1_load", scheme="base", dst_scheme="triple"
    )
    wall = time.perf_counter() - start
    return wall, network.ledger.rounds("compute_pairs.step1_load")


def test_e11_builder_scaling_large_n(benchmark):
    """PR 3's array-major acceptance unit: the Step-1 builder at
    n = 1024/2048, node-major loops vs arithmetic index grids.

    The full solver is far out of reach at these sizes — the builders were
    the wall (ROADMAP: "Larger-n congest scaling"), so this measures
    exactly the refactored layer: batch construction + vectorized Lemma 1
    accounting, with round charges asserted identical between the two
    builders.
    """
    rows = []
    metrics = []
    for n in [256, 1024, 2048]:
        loop_wall, loop_rounds = step1_wall(n, _reference.step1_batch_loops)
        array_wall, array_rounds = step1_wall(n, step1_batch)
        assert loop_rounds == array_rounds  # accounting unchanged
        speedup = loop_wall / array_wall if array_wall else float("inf")
        rows.append(
            [
                n,
                len(step1_batch(CliquePartitions(n))),
                round(loop_wall * 1000, 1),
                round(array_wall * 1000, 2),
                array_rounds,
                f"{speedup:.0f}x",
            ]
        )
        metrics.append(
            {
                "n": n,
                "wall_seconds": round(array_wall, 5),
                "rounds": array_rounds,
                "loop_builder_wall_seconds": round(loop_wall, 5),
            }
        )
    table = format_table(
        ["n", "messages", "loop ms", "array ms", "rounds", "speedup"],
        rows,
        title=(
            "PR 3  array-major Step-1 builder at large n\n"
            "build + deliver one Step-1 gather: node-major loop builder\n"
            "(core/_reference.py) vs arithmetic index grids (step1_batch);\n"
            "identical Lemma 1 round charges, asserted per size.\n"
            "Acceptance units vs the PR 2 tree on the same container:\n"
            "e1 n=16 quantum solve 2.64s -> 0.57s (4.7x; PR2 published 2.83s);\n"
            "e10b full step-1 gather (network + scheme + build + deliver)\n"
            "n=81 2.3ms -> 0.6ms (4.0x), n=625 19.9ms -> 5.7ms (3.5x),\n"
            "n=2048 98ms -> 32ms (3.1x); round charges identical everywhere"
        ),
    )
    write_result("pr3_array_major_speedup", table)
    write_metrics("pr3_array_major_speedup", metrics)

    benchmark.pedantic(
        step1_wall, args=(1024, step1_batch), rounds=1, iterations=1
    )
