"""E15 — array-backed Step-3 evaluation accounting (PR 5).

What this regenerates: wall time of the three Step-3 setup stages —
query-plan build, ``evaluation_rounds``, and ``BatchedMultiSearch`` lane
setup — at ``n ∈ {81, 256, 1296}``, measured for the columnar/bulk forms
(:func:`repro.core.quantum_step3.class_query_plan`,
:func:`repro.core.evaluation.evaluation_rounds`,
:meth:`~repro.quantum.batched.BatchedMultiSearch.add_lanes`) against the
dict-walking / per-label forms preserved in ``repro.core._reference``
(``step3_domains_dicts`` + ``step3_query_plan_dicts``,
``evaluation_rounds_dicts``, per-label ``add``).  Round values must agree
exactly per class — the accounting is a representation change, never a
charge change (the full byte-identity proof lives in
``tests/test_step3_equivalence.py``).

``test_e15_pr5_step3_speedup`` additionally records the PR-5 acceptance
measurement: the ``n = 256`` quantum ComputePairs profile with Step 3 no
longer at the 74% share PR 4 left it at
(``results/pr5_step3_accounting_speedup.txt``).
"""

from __future__ import annotations

import cProfile
import pstats
import time

import numpy as np

import repro
from repro import telemetry
from repro.analysis import format_table
from repro.congest.network import CongestClique
from repro.congest.partitions import CliquePartitions
from repro.core import _reference as reference
from repro.core.compute_pairs import _step2_sample
from repro.core.constants import PaperConstants
from repro.core.evaluation import (
    QueryPlan,
    block_two_hop,
    duplication_count,
    evaluation_rounds,
)
from repro.core.identify_class import run_identify_class
from repro.core.quantum_step3 import (
    _SearchArrays,
    class_query_plan,
    register_class_lanes,
)
from repro.quantum.batched import BatchedMultiSearch
from repro.util.rng import spawn_rng

from benchmarks.conftest import write_metrics, write_result

SIZES = [81, 256, 1296]
SCALE = 0.05  # the SIMULATION regime full solves run at


def build_step3_inputs(n: int, seed: int):
    """Network, partitions, assignment, and node_pairs exactly as the full
    pipeline hands them to Step 3 (steps 1–2 plus IdentifyClass)."""
    graph = repro.random_undirected_graph(n, density=0.4, max_weight=6, rng=3)
    instance = repro.FindEdgesInstance(graph)
    constants = PaperConstants(scale=SCALE)
    partitions = CliquePartitions(n)
    rng = np.random.default_rng(seed)
    network = CongestClique(n, rng=spawn_rng(rng))
    network.register_scheme("triple", partitions.triple_labels())
    network.register_scheme("search", partitions.search_labels())
    fine_blocks = partitions.fine.blocks()
    cache: dict = {}

    def two_hop_for(bu, bv):
        if (bu, bv) not in cache:
            cache[(bu, bv)] = block_two_hop(
                graph.weights,
                partitions.coarse.block(bu),
                partitions.coarse.block(bv),
                fine_blocks,
            )
        return cache[(bu, bv)]

    node_pairs, _coverage = _step2_sample(
        network, partitions, instance, constants, rng, two_hop_for
    )
    assignment = run_identify_class(
        network, instance, partitions, constants, two_hop_for, rng
    )
    return network, partitions, constants, assignment, node_pairs


def accounting_timings(n: int, seed: int = 7) -> dict:
    """Per-stage wall times, columnar vs dict/per-label, summed over the
    instance's classes (identical round values asserted per class)."""
    network, partitions, constants, assignment, node_pairs = build_step3_inputs(
        n, seed
    )
    alphas = sorted(set(assignment.classes.values()))
    arrays = _SearchArrays.build(network, node_pairs)

    plan_array_wall = plan_dict_wall = 0.0
    eval_array_wall = eval_dict_wall = 0.0
    lanes_bulk_wall = lanes_add_wall = 0.0
    num_entries = 0
    num_lanes = 0
    for alpha in alphas:
        beta = constants.eval_beta(n, alpha)
        dup = duplication_count(constants, n, alpha)
        assert dup == 1, "e15 measures the Fig. 4 regime (dup == 1)"

        # --- query-plan build ------------------------------------------
        start = time.perf_counter()
        csr = assignment.domain_csr(
            arrays.components[:, 0], arrays.components[:, 1], alpha,
            partitions.num_coarse,
        )
        plan = class_query_plan(network, arrays, csr, beta, dup)
        plan_array_wall += time.perf_counter() - start

        start = time.perf_counter()
        domains = reference.step3_domains_dicts(assignment, node_pairs, alpha)
        query_plan = reference.step3_query_plan_dicts(
            domains, node_pairs, beta, dup
        )
        plan_dict_wall += time.perf_counter() - start
        num_entries += len(plan)

        # --- evaluation_rounds -----------------------------------------
        start = time.perf_counter()
        eval_array = evaluation_rounds(network.num_nodes, plan, beta)
        eval_array_wall += time.perf_counter() - start

        node_physical = network.scheme("search").physical_lookup()
        dest_physical = network.scheme("triple").physical_lookup()
        start = time.perf_counter()
        eval_dict = reference.evaluation_rounds_dicts(
            network.num_nodes, node_physical, query_plan, dest_physical, beta
        )
        eval_dict_wall += time.perf_counter() - start
        assert eval_array == eval_dict
        # Cross-check the columnar plan against the dict plan it replaces.
        dict_plan = QueryPlan.from_mappings(
            node_physical, query_plan, dest_physical
        )
        assert evaluation_rounds(network.num_nodes, dict_plan, beta) == eval_array
        eval_r = max(eval_array, 1.0)

        # --- lane setup -------------------------------------------------
        counts, offsets, flat_blocks = csr
        lane_indices = np.nonzero((counts > 0) & (arrays.num_pairs > 0))[0]
        if lane_indices.size == 0:
            continue
        num_lanes += int(lane_indices.size)
        seeds = np.random.default_rng(seed).integers(
            0, 2**63 - 1, size=lane_indices.size
        )

        start = time.perf_counter()
        bulk = BatchedMultiSearch(beta=beta, eval_rounds=eval_r)
        register_class_lanes(bulk, arrays, node_pairs, csr, lane_indices, seeds)
        lanes_bulk_wall += time.perf_counter() - start

        start = time.perf_counter()
        per_label = BatchedMultiSearch(beta=beta, eval_rounds=eval_r)
        for lane, label_ix in enumerate(lane_indices.tolist()):
            label = arrays.keys[label_ix]
            blocks = flat_blocks[offsets[label_ix]:offsets[label_ix + 1]]
            table = node_pairs[label][2]
            per_label.add(
                label, int(blocks.size), table[:, blocks],
                rng=int(seeds[lane]),
            )
        lanes_add_wall += time.perf_counter() - start
        assert len(bulk) == len(per_label)

    return {
        "classes": len(alphas),
        "plan_entries": num_entries,
        "lanes": num_lanes,
        "plan_array_wall": plan_array_wall,
        "plan_dict_wall": plan_dict_wall,
        "eval_array_wall": eval_array_wall,
        "eval_dict_wall": eval_dict_wall,
        "lanes_bulk_wall": lanes_bulk_wall,
        "lanes_add_wall": lanes_add_wall,
    }


def test_e15_step3_accounting(benchmark):
    rows = []
    metrics = []
    for n in SIZES:
        timings = accounting_timings(n)
        rows.append(
            [
                n,
                timings["plan_entries"],
                timings["lanes"],
                round(timings["plan_dict_wall"] * 1e3, 2),
                round(timings["plan_array_wall"] * 1e3, 3),
                round(timings["eval_dict_wall"] * 1e3, 2),
                round(timings["eval_array_wall"] * 1e3, 3),
                round(timings["lanes_add_wall"] * 1e3, 1),
                round(timings["lanes_bulk_wall"] * 1e3, 1),
            ]
        )
        metrics.append(
            {
                "n": n,
                "wall_seconds": round(
                    timings["plan_array_wall"]
                    + timings["eval_array_wall"]
                    + timings["lanes_bulk_wall"],
                    6,
                ),
                "rounds": None,
                "plan_entries": timings["plan_entries"],
                "lanes": timings["lanes"],
                "plan_dict_wall_seconds": round(timings["plan_dict_wall"], 6),
                "plan_array_wall_seconds": round(timings["plan_array_wall"], 6),
                "eval_dict_wall_seconds": round(timings["eval_dict_wall"], 6),
                "eval_array_wall_seconds": round(timings["eval_array_wall"], 6),
                "lane_add_wall_seconds": round(timings["lanes_add_wall"], 6),
                "lane_bulk_wall_seconds": round(timings["lanes_bulk_wall"], 6),
            }
        )
    table = format_table(
        [
            "n",
            "plan entries",
            "lanes",
            "plan dict ms",
            "plan array ms",
            "eval dict ms",
            "eval array ms",
            "lanes add ms",
            "lanes bulk ms",
        ],
        rows,
        title=(
            "E15  array-backed Step-3 accounting at scale\n"
            "query-plan build (dict-of-dicts loop vs columnar QueryPlan over\n"
            "the domain CSR), evaluation_rounds (dict walk vs np.bincount),\n"
            f"and lane setup (per-label add vs add_lanes); scale={SCALE},\n"
            "identical round values asserted per class"
        ),
    )
    write_result("e15_step3_accounting", table)
    write_metrics("e15_step3_accounting", metrics)

    benchmark.pedantic(accounting_timings, args=(81,), rounds=1, iterations=1)


def test_e15_pr5_step3_speedup():
    # Acceptance: the n = 256 quantum solve profile — PR 4 left Step 3 at
    # 74% of solve time; the array-backed accounting must bring it below
    # that, with the setup stages themselves a small share.  Profiled with
    # telemetry uninstalled: the ambient benchmark collector's per-draw
    # accounting would inflate the RNG-heavy Step-3 share, and e17 owns
    # the cost-of-telemetry question.
    graph = repro.random_undirected_graph(256, density=0.4, max_weight=6, rng=3)
    instance = repro.FindEdgesInstance(graph)
    profile = cProfile.Profile()
    ambient = telemetry.uninstall()
    try:
        start = time.perf_counter()
        profile.enable()
        solution = repro.compute_pairs(
            instance, constants=PaperConstants(scale=SCALE), rng=5
        )
        profile.disable()
        total_wall = time.perf_counter() - start
    finally:
        if ambient is not None:
            telemetry.install(ambient)

    def cumulative(suffix: str, module: str = "repro") -> float:
        # ``module`` pins the defining file: several repro classes define a
        # ``run`` method, and only quantum/batched.py's is the BBHT loop.
        stats = pstats.Stats(profile)
        for (filename, _line, name), entry in stats.stats.items():
            if name == suffix and module in filename:
                return entry[3]  # cumulative seconds
        return 0.0

    step2_cum = cumulative("_step2_sample")
    step3_cum = cumulative("run_step3")
    search_cum = cumulative("run", module="quantum/batched.py")
    setup_cum = (
        cumulative("class_query_plan")
        + cumulative("evaluation_rounds")
        + cumulative("add_lanes")
        + cumulative("domain_csr")
    )
    assert solution.rounds > 0
    step3_share = step3_cum / total_wall
    setup_share = setup_cum / total_wall
    # PR 4's committed profile had Step 3 at 74%; the accounting+setup
    # stages must now be a small share and Step 3 clearly below that mark.
    assert step3_share < 0.70
    assert setup_share < 0.25

    lines = [
        "PR 5  array-backed Step-3 accounting: columnar query plans +",
        "padded-lane BatchedMultiSearch.  Query plans are QueryPlan int64",
        "columns (src_phys, dst_phys, pair_counts) built by index arithmetic",
        "over the ClassAssignment domain CSR, loads reduce with np.bincount,",
        "and lane setup is one add_lanes call per cache-sized chunk of the",
        "padded witness-table stack — dict forms preserved in",
        "core/_reference.py, byte-identity in tests/test_step3_equivalence.py.",
        f"ComputePairs n=256 (quantum, scale={SCALE}): total "
        f"{total_wall:.2f} s, step2 {step2_cum:.2f} s "
        f"({100 * step2_cum / total_wall:.0f}%), step3 "
        f"{step3_cum:.2f} s ({100 * step3_share:.0f}%) of which "
        f"accounting+lane setup {setup_cum:.3f} s "
        f"({100 * setup_share:.0f}%) and the lockstep search loop "
        f"{search_cum:.2f} s — Step 3 is no longer the 74% entry PR 4",
        "measured (0.70 s solve, step3 0.52 s); the residual is the",
        "per-lane-RNG lockstep repetition loop, not accounting.",
    ]
    write_result("pr5_step3_accounting_speedup", "\n".join(lines))
    write_metrics(
        "pr5_step3_accounting_speedup",
        [
            {
                "n": 256,
                "wall_seconds": round(total_wall, 4),
                "rounds": solution.rounds,
                "step2_cumulative_seconds": round(step2_cum, 4),
                "step3_cumulative_seconds": round(step3_cum, 4),
                "step3_share": round(step3_share, 3),
                "step3_setup_cumulative_seconds": round(setup_cum, 4),
                "step3_setup_share": round(setup_share, 3),
                "search_loop_cumulative_seconds": round(search_cum, 4),
            }
        ],
    )


def test_smoke_e15_step3_accounting():
    # The columnar accounting agrees with the dict forms on a small
    # pipeline instance: identical eval rounds per class, identical lane
    # counts — the cheap CI tripwire for the full equivalence suite.
    timings = accounting_timings(81, seed=5)
    assert timings["plan_entries"] > 0
    assert timings["lanes"] > 0
