"""E10 — Lemma 1 (Dolev–Lenzen–Peled routing).

Paper claim: a message set in which no node sources or sinks more than
``n`` messages is deliverable in 2 rounds; the standard generalization
schedules an arbitrary batch in ``2·⌈L/n⌉`` rounds for max load ``L``.

What this regenerates: the router's charge across balanced, skewed and
adversarial message sets, plus the Step-1 load pattern of ComputePairs
whose ``Θ(n^{5/4})`` per-node volume yields the ``O(n^{1/4})`` charge the
paper's analysis quotes.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.analysis import fit_exponent, format_table
from repro.congest.message import Message
from repro.congest.network import CongestClique
from repro.congest.partitions import CliquePartitions
from repro.core.compute_pairs import _step1_load

from benchmarks.conftest import write_metrics, write_result


def synthetic_batches(n: int):
    """(name, src_load, dst_load) triples with known expected charges."""
    rng = np.random.default_rng(0)
    uniform = [n] * n
    one_hot = [0] * n
    one_hot[0] = n * n  # single node sinks everything
    random_perm = rng.integers(0, 2 * n, size=n).tolist()
    return [
        ("balanced (Lemma 1 premise)", uniform, uniform, 2.0),
        ("single hot sink", [n] * n, one_hot, 2.0 * n),
        ("random ≤2n loads", random_perm, random_perm, None),
        ("empty", [0] * n, [0] * n, 0.0),
    ]


def step1_rounds(n: int) -> float:
    network = CongestClique(n, rng=0)
    partitions = CliquePartitions(n)
    network.register_scheme("triple", partitions.triple_labels())
    _step1_load(network, partitions)
    return network.ledger.rounds("compute_pairs.step1_load")


def test_e10_routing(benchmark):
    from repro.congest.router import route_rounds

    n = 64
    rows = []
    for name, src, dst, expected in synthetic_batches(n):
        got = route_rounds(n, src, dst)
        if expected is not None:
            assert got == expected
        max_load = max(max(src), max(dst))
        rows.append([name, max_load, got, 2 * np.ceil(max_load / n)])
    table = format_table(
        ["batch", "max load L", "rounds", "2·⌈L/n⌉"],
        rows,
        title="E10a  Lemma 1 router charges on synthetic batches (n=64)",
    )
    write_result("e10a_routing", table)

    # Step-1 gather: per-node Θ(n^{5/4}) words ⇒ ~n^{1/4} rounds.
    sizes = [16, 81, 256, 625]
    rounds = []
    metrics = []
    for n in sizes:
        start = time.perf_counter()
        charged = step1_rounds(n)
        wall = time.perf_counter() - start
        rounds.append(charged)
        metrics.append(
            {"n": n, "wall_seconds": round(wall, 4), "rounds": charged}
        )
    exponent, _, r2 = fit_exponent(sizes, rounds)
    rows = [[n, r, 4 * n ** 0.25] for n, r in zip(sizes, rounds)]
    table = format_table(
        ["n", "step-1 rounds", "≈4·n^{1/4}"],
        rows,
        title=f"E10b  ComputePairs Step-1 gather (fitted exponent {exponent:.2f}, paper: 1/4)",
    )
    write_result("e10b_step1_gather", table)
    write_metrics("e10b_step1_gather", metrics)
    assert 0.1 < exponent < 0.4
    assert r2 > 0.9

    benchmark.pedantic(step1_rounds, args=(81,), rounds=1, iterations=1)
