"""E8 — Proposition 5 + Lemma 4: the ``Tα`` classification.

Paper claims: IdentifyClass aborts with probability ≤ ``1/n`` and otherwise
places every triple so that ``|Δ(u,v;w)|`` lies within a factor-8 window of
its class (``2^{α−3}·n ≤ |Δ| ≤ 2^{α+1}·n`` for ``α > 0``); Lemma 4 caps
``|Tα[u,v]| ≤ 720·√n·log n / 2^α`` under the promise.

What this regenerates: planted triangle-density instances where the exact
``|Δ|`` is computable; the table reports the classification windows and the
class-size profile against Lemma 4's cap; the A2 ablation measures the
query-plan destination load with and without the class split.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import format_table
from repro.congest.network import CongestClique
from repro.congest.partitions import CliquePartitions
from repro.core.constants import PaperConstants
from repro.core.evaluation import block_two_hop
from repro.core.identify_class import run_identify_class
from repro.core.problems import FindEdgesInstance

from benchmarks.conftest import write_result

N = 64
#: rate 1 ⇒ exact estimates; tiny class threshold ⇒ several classes occupied.
CONSTANTS = PaperConstants(scale=4.0, class_threshold_factor=0.05)


def setup(instance):
    network = CongestClique(instance.num_vertices, rng=0)
    partitions = CliquePartitions(instance.num_vertices)
    network.register_scheme("triple", partitions.triple_labels())
    cache = {}

    def two_hop_for(bu, bv):
        if (bu, bv) not in cache:
            cache[(bu, bv)] = block_two_hop(
                instance.graph.weights,
                partitions.coarse.block(bu),
                partitions.coarse.block(bv),
                partitions.fine.blocks(),
            )
        return cache[(bu, bv)]

    return network, partitions, two_hop_for


def exact_delta(instance, partitions, bu, bv, bw):
    """|Δ(u, v; w)| by brute force (Definition 3)."""
    scope = instance.effective_scope()
    weights = instance.graph.weights
    fine = partitions.fine.block(bw)
    count = 0
    for u, v in map(tuple, partitions.block_pairs(bu, bv).tolist()):
        if (u, v) not in scope:
            continue
        pair_weight = weights[u, v]
        through = weights[u, fine] + weights[fine, v]
        valid = np.isfinite(through) & (through < -pair_weight)
        valid &= (fine != u) & (fine != v)
        count += int(valid.any())
    return count


def run_classification(seed: int):
    graph = repro.random_undirected_graph(N, density=0.6, max_weight=4, rng=seed)
    instance = FindEdgesInstance(graph)
    network, partitions, two_hop_for = setup(instance)
    assignment = run_identify_class(
        network, instance, partitions, CONSTANTS, two_hop_for, rng=seed
    )
    return instance, partitions, assignment


def test_e8_identify_class(benchmark):
    instance, partitions, assignment = run_classification(seed=2)

    # (a) classification windows: with rate 1, d_{uvw} equals |Δ| exactly,
    # so the class is exactly the threshold bucket of |Δ|.
    rows = []
    checked = 0
    for (bu, bv, bw), alpha in list(assignment.classes.items())[:12]:
        delta = exact_delta(instance, partitions, bu, bv, bw)
        threshold_low = 0 if alpha == 0 else CONSTANTS.class_threshold(N, alpha - 1)
        threshold_high = CONSTANTS.class_threshold(N, alpha)
        in_window = threshold_low <= delta < threshold_high
        rows.append([f"({bu},{bv},{bw})", alpha, delta, threshold_low, threshold_high, in_window])
        assert in_window
        checked += 1
    assert checked > 0
    table = format_table(
        ["triple", "class α", "|Δ|", "low", "high", "in window"],
        rows,
        title="E8a  IdentifyClass placements vs exact |Δ(u,v;w)| (rate 1 ⇒ exact, Prop. 5)",
    )
    write_result("e8a_identify_class_windows", table)

    # (b) Lemma 4's counting argument, instantiated: for α > 0 every block
    # in Tα[u,v] witnesses ≥ threshold(α−1) scope pairs (rate-1 estimates
    # are exact), so |Tα[u,v]| · threshold(α−1) ≤ Σ_w |Δ(u,v;w)|.
    rows = []
    profile: dict[int, int] = {}
    for (bu, bv), classes in assignment.t_alpha.items():
        deltas = {
            bw: exact_delta(instance, partitions, bu, bv, bw)
            for bw in range(partitions.num_fine)
        }
        total_delta = sum(deltas.values())
        for alpha, blocks in classes.items():
            profile[alpha] = profile.get(alpha, 0) + len(blocks)
            if alpha > 0 and total_delta > 0:
                cap = total_delta / CONSTANTS.class_threshold(N, alpha - 1)
                assert len(blocks) <= cap + 1e-9
    for alpha in sorted(profile):
        bound = (
            "-"
            if alpha == 0
            else f"Σ|Δ|/threshold({alpha - 1})"
        )
        rows.append([alpha, profile[alpha], bound])
    table = format_table(
        ["class α", "total |Tα| across block pairs", "Lemma-4 cap"],
        rows,
        title=(
            "E8b  Lemma 4 counting bound: |Tα[u,v]|·threshold(α−1) ≤ Σ_w |Δ(u,v;w)|\n"
            "(verified per block pair for every α > 0)"
        ),
    )
    write_result("e8b_class_sizes", table)

    # (c, ablation A2) destination load with vs without the class split:
    # sending each node's full query load to *one* class's nodes (no split)
    # concentrates; the α-split with duplication spreads it.
    rows = []
    total_blocks = partitions.num_fine
    heavy = [alpha for alpha in profile if alpha > 0]
    split_max = max(profile.values())
    nosplit_max = sum(profile.values())
    rows.append(["with Tα split", split_max])
    rows.append(["single class (ablation)", nosplit_max])
    table = format_table(
        ["scheme", "max class size (∝ query fan-in)"],
        rows,
        title="E8c (ablation A2)  class split caps per-class fan-in",
    )
    write_result("e8c_class_split_ablation", table)

    benchmark.pedantic(run_classification, args=(3,), rounds=1, iterations=1)
