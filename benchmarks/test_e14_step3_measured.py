"""E14 — measured quantum-vs-classical Step 3 (complements E9b's model).

E9b places the Step-3 crossover analytically at n = 2^34; this experiment
measures both modes on the simulator at reachable sizes, confirming the
model's *small-n ordering* (the linear scan wins while |X| = √n is tiny and
the BBHT schedule's log-repetitions dominate) and the components feeding
the crossover: the classical cost per class is ``|X|·r`` exactly, the
quantum cost is ``repetitions·(k̄+1)·r`` with the same measured ``r``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import format_table
from repro.analysis.sweeps import sweep_compute_pairs
from repro.core.constants import PaperConstants

from benchmarks.conftest import write_result

SIZES = [81, 256]
CONSTANTS = PaperConstants(scale=0.05)


def run_modes(seed: int):
    quantum = sweep_compute_pairs(
        SIZES, constants=CONSTANTS, search_mode="quantum", rng=seed
    )
    classical = sweep_compute_pairs(
        SIZES, constants=CONSTANTS, search_mode="classical", rng=seed
    )
    return quantum, classical


def test_e14_step3_measured(benchmark):
    quantum, classical = run_modes(seed=11)
    rows = []
    for q_point, c_point in zip(quantum, classical):
        n = q_point.size
        q_search = sum(q_point.details["search_rounds_per_alpha"].values())
        c_search = sum(c_point.details["search_rounds_per_alpha"].values())
        rows.append(
            [
                n,
                q_search,
                c_search,
                q_search / max(c_search, 1.0),
                q_point.false_negatives,
                c_point.false_negatives,
            ]
        )
        # Both modes are one-sided; the scan's only misses are Step-2
        # coverage gaps (≲1% at this scale), not search errors.
        assert c_point.false_positives == 0
        assert q_point.false_positives == 0
        assert c_point.false_negatives <= max(1, c_point.truth_size // 50)

    table = format_table(
        ["n", "quantum step3", "classical step3", "ratio q/c", "q missed", "c missed"],
        rows,
        title=(
            "E14  measured Step-3 rounds, quantum vs linear scan (scale 0.05)\n"
            "at simulator sizes the log-repetition factor keeps the scan ahead,\n"
            "matching E9b's model (crossover ≈ 2^34); the shared evaluation cost r\n"
            "is identical in both modes by construction"
        ),
    )
    write_result("e14_step3_measured", table)

    # The model's small-n ordering: classical wins here.
    assert all(row[1] > row[2] for row in rows)
    # The ratio must shrink as n grows (the √ advantage closing in).
    assert rows[-1][3] < rows[0][3] * 1.5

    benchmark.pedantic(run_modes, args=(13,), rounds=1, iterations=1)
