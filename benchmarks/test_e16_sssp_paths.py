"""E16 — the extensions: SSSP round spectrum and path reconstruction.

Two paper remarks get their numbers here:

* "the above Õ(n^{1/3})-round [algorithm] is … also the best known exact
  algorithm for SSSP in the CONGEST-CLIQUE model" — we measure the SSSP
  spectrum: naive distributed Bellman–Ford (``O(n)`` rounds), the
  Censor-Hillel APSP (``Õ(n^{1/3})``, all sources at once), and the
  analytic quantum bound (``Õ(n^{1/4})``).
* footnote 1: paths, not just lengths, at a polylog overhead — we measure
  the overhead of the hop-augmented + witnessed-product construction and
  verify every reconstructed path realizes its distance.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import RoundModel, fit_exponent, format_table
from repro.core.apsp_solver import QuantumAPSP
from repro.core.paths import APSPWithPaths
from repro.matrix.witness import path_weight

from benchmarks.conftest import write_result


def test_e16a_sssp_spectrum(benchmark):
    model = RoundModel()
    rows = []
    bf_rounds = []
    sizes = [27, 64, 125, 216]
    for n in sizes:
        graph = repro.random_digraph_no_negative_cycle(n, density=0.4, rng=3)
        truth = repro.floyd_warshall(graph)
        bf = repro.bellman_ford_distributed(graph, 0, rng=3)
        assert np.array_equal(bf.distances, truth[0])
        assert repro.validate_sssp(graph, 0, bf.distances)
        ch = repro.CensorHillelAPSP(rng=3).solve(graph)
        assert np.array_equal(ch.distances, truth)
        bf_rounds.append(bf.rounds)
        rows.append(
            [n, bf.rounds, ch.rounds, model.quantum_apsp_leading(n)]
        )
    exponent, _, _ = fit_exponent(sizes, bf_rounds)
    table = format_table(
        ["n", "bellman-ford (1 src)", "censor-hillel (all src)", "quantum leading"],
        rows,
        title=(
            "E16a  SSSP round spectrum "
            f"(Bellman–Ford fitted exponent {exponent:.2f}; "
            "O(n) vs Õ(n^{1/3}) vs Õ(n^{1/4}))"
        ),
    )
    write_result("e16a_sssp_spectrum", table)
    # Bellman–Ford's iteration count tracks the graph's hop diameter; on
    # dense random digraphs that is O(log n), so the interesting check is
    # absolute: BF is cheap per source but cannot batch all sources.
    assert all(row[1] > 0 for row in rows)

    benchmark.pedantic(
        repro.bellman_ford_distributed,
        args=(repro.random_digraph_no_negative_cycle(64, density=0.4, rng=5), 0),
        kwargs={"rng": 5},
        rounds=1,
        iterations=1,
    )


def test_e16b_path_reconstruction_overhead(benchmark):
    rows = []
    for n in [8, 12, 16]:
        graph = repro.random_digraph_no_negative_cycle(n, density=0.5, rng=7)
        truth = repro.floyd_warshall(graph)
        base = QuantumAPSP(backend=repro.ReferenceFindEdges())

        plain = base.solve(graph)
        with_paths = APSPWithPaths(
            QuantumAPSP(backend=repro.DolevFindEdges(rng=7)),
            witness_backend=repro.DolevFindEdges(rng=7),
        ).solve(graph)
        distance_only = QuantumAPSP(backend=repro.DolevFindEdges(rng=7)).solve(graph)

        assert np.array_equal(plain.distances, truth)
        assert np.array_equal(with_paths.distances, truth)
        # Every path realizes its distance.
        weights = graph.apsp_matrix()
        checked = 0
        for i in range(n):
            for j in range(n):
                path = with_paths.path(i, j)
                if path is None:
                    assert not np.isfinite(truth[i, j])
                else:
                    assert path_weight(weights, path) == truth[i, j]
                    checked += 1
        overhead = with_paths.rounds / distance_only.rounds
        rows.append([n, distance_only.rounds, with_paths.rounds, overhead, checked])
    table = format_table(
        ["n", "distances only", "with paths", "overhead ×", "paths verified"],
        rows,
        title=(
            "E16b  path reconstruction overhead (footnote 1)\n"
            "hop augmentation + witnessed product: a small constant/log factor"
        ),
    )
    write_result("e16b_path_overhead", table)
    # Footnote's claim: polylog, i.e. a small multiplicative factor here.
    assert all(1.0 <= row[3] < 6.0 for row in rows)

    benchmark.pedantic(
        lambda: APSPWithPaths(QuantumAPSP(backend=repro.ReferenceFindEdges())).solve(
            repro.random_digraph_no_negative_cycle(10, density=0.5, rng=9)
        ),
        rounds=1,
        iterations=1,
    )
