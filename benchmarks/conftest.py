"""Benchmark-harness helpers.

Each ``test_eN_*.py`` regenerates one experiment from DESIGN.md's index:
it sweeps the workload, prints the paper-shaped table, writes it under
``benchmarks/results/`` (the files EXPERIMENTS.md cites), and times one
representative unit through the ``benchmark`` fixture so the whole suite
runs under ``pytest benchmarks/ --benchmark-only``.

Heavy experiments use ``benchmark.pedantic(..., rounds=1, iterations=1)``:
the sweep itself is the measurement; re-running it for timing statistics
would multiply minutes of simulation for no extra information.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist an experiment's table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


@pytest.fixture
def rng():
    return np.random.default_rng(2024)
