"""Benchmark-harness helpers.

Each ``test_eN_*.py`` regenerates one experiment from DESIGN.md's index:
it sweeps the workload, prints the paper-shaped table, writes it under
``benchmarks/results/`` (the files EXPERIMENTS.md cites), and times one
representative unit through the ``benchmark`` fixture so the whole suite
runs under ``pytest benchmarks/ --benchmark-only``.

Heavy experiments use ``benchmark.pedantic(..., rounds=1, iterations=1)``:
the sweep itself is the measurement; re-running it for timing statistics
would multiply minutes of simulation for no extra information.
"""

from __future__ import annotations

import json
import pathlib
import subprocess

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import report as telemetry_report

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def _bench_telemetry():
    """Run every benchmark under a telemetry collector.

    Strictly observational — counting generators are stream-identical and
    the bridged tracer only mirrors records, so the committed tables stay
    byte-identical (e17 asserts the overhead contract).  The collector is
    what lets :func:`write_metrics` attach the ``phase_breakdown`` column
    to every result row.

    Multi-process benchmarks report their workers' phases too: worker
    summaries shipped back by the :mod:`repro.parallel` dispatcher and the
    job engine land in this collector via
    :meth:`~repro.telemetry.collector.TelemetryCollector.merge_worker`,
    and :func:`~repro.telemetry.report.phase_breakdown` folds them into the
    per-phase totals — so a dispatched run's breakdown shows the search
    work itself, not just the parent's dispatch overhead.
    """
    with telemetry.collect() as collector:
        yield collector


def write_result(name: str, text: str) -> None:
    """Persist an experiment's table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def current_commit() -> str:
    """Short hash of HEAD, or "unknown" outside a git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def write_metrics(experiment: str, records: list[dict]) -> None:
    """Persist machine-readable metrics as ``results/<experiment>.json``.

    Each record carries the cross-PR diffable schema — ``experiment``,
    ``n``, ``wall_seconds``, ``rounds``, ``commit`` — plus any extra keys
    the experiment finds useful; ``tools/bench_summary.py`` rolls every
    such file into ``BENCH_SUMMARY.json`` for trajectory diffs.

    When the ambient telemetry collector is live (the autouse
    ``_bench_telemetry`` fixture), every record additionally carries the
    test-so-far ``phase_breakdown`` — per-span wall/self seconds, RNG
    draws, and per-phase congest rounds (``repro.telemetry/v1``, validated
    by ``tools/bench_summary.py --check``).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    commit = current_commit()
    breakdown = None
    collector = telemetry.active()
    if collector is not None:
        breakdown = telemetry_report.phase_breakdown(collector.snapshot())
    payload = [
        {
            "experiment": experiment,
            "n": record.get("n"),
            "wall_seconds": record.get("wall_seconds"),
            "rounds": record.get("rounds"),
            "commit": commit,
            **({"phase_breakdown": breakdown} if breakdown is not None else {}),
            **{
                key: value
                for key, value in record.items()
                if key not in ("n", "wall_seconds", "rounds")
            },
        }
        for record in records
    ]
    path = RESULTS_DIR / f"{experiment}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def rng():
    return np.random.default_rng(2024)
