"""Benchmark-harness helpers.

Each ``test_eN_*.py`` regenerates one experiment from DESIGN.md's index:
it sweeps the workload, prints the paper-shaped table, writes it under
``benchmarks/results/`` (the files EXPERIMENTS.md cites), and times one
representative unit through the ``benchmark`` fixture so the whole suite
runs under ``pytest benchmarks/ --benchmark-only``.

Heavy experiments use ``benchmark.pedantic(..., rounds=1, iterations=1)``:
the sweep itself is the measurement; re-running it for timing statistics
would multiply minutes of simulation for no extra information.
"""

from __future__ import annotations

import json
import pathlib
import subprocess

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist an experiment's table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def current_commit() -> str:
    """Short hash of HEAD, or "unknown" outside a git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def write_metrics(experiment: str, records: list[dict]) -> None:
    """Persist machine-readable metrics as ``results/<experiment>.json``.

    Each record carries the cross-PR diffable schema — ``experiment``,
    ``n``, ``wall_seconds``, ``rounds``, ``commit`` — plus any extra keys
    the experiment finds useful; ``tools/bench_summary.py`` rolls every
    such file into ``BENCH_SUMMARY.json`` for trajectory diffs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    commit = current_commit()
    payload = [
        {
            "experiment": experiment,
            "n": record.get("n"),
            "wall_seconds": record.get("wall_seconds"),
            "rounds": record.get("rounds"),
            "commit": commit,
            **{
                key: value
                for key, value in record.items()
                if key not in ("n", "wall_seconds", "rounds")
            },
        }
        for record in records
    ]
    path = RESULTS_DIR / f"{experiment}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def rng():
    return np.random.default_rng(2024)
