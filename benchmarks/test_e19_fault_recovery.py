"""E19 — fault-recovery contract (PR 9).

What this regenerates: the service layer's behavior under deterministic
injected faults.  For each fault rate the same batch of graphs runs
through ``JobEngine.run_pending_parallel`` with the fault plane injecting
worker crashes (``os._exit`` in pool workers), transient ``OSError``s,
latency, and on-disk artifact corruption, all at that rate.  The table
reports goodput (jobs finished per wall second), retry counts, pool
rebuilds, quarantined artifacts, and the mean recovery wait.

The contract asserted here (and in the bench-smoke lane via
``test_smoke_e19_fault_recovery``):

* at every injected rate up to 20%, **all** jobs converge to ``DONE``
  within the retry budget;
* every recovered artifact is **byte-identical** (distances and
  successors) to the fault-free solve of the same graph — recovery never
  trades correctness for liveness;
* artifacts quarantined by injected disk corruption are transparently
  re-solved, and the re-solved artifact is byte-identical too.

Fault decisions are pure functions of ``(seed, kind, site, token)``:
solve-site draws are keyed to ``(solver, digest, attempt)`` and disk
corruption to the artifact name plus its per-artifact persist ordinal,
so a seeded scenario hits the same artifacts and attempts regardless of
how the pool interleaved them — the ``quarantined`` and ``injected``
columns are stable across re-runs.  The ``retries`` and ``rebuilds``
columns are **not**: an injected crash breaks the *shared* process pool,
and every co-scheduled in-flight attempt is collaterally failed and
re-dispatched, so those counts depend on how many futures dispatch
timing had in flight at the moment of the crash.  The contract columns
(``done``, ``identical``) are exact on every run.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import repro
from repro.analysis import format_table
from repro.service import (
    JobEngine,
    JobState,
    ResultStore,
    RetryPolicy,
    artifact_key,
)
from repro.service import faults
from repro.service.faults import FaultConfig

from benchmarks.conftest import write_metrics, write_result

FAULT_RATES = [0.0, 0.05, 0.1, 0.2]
BATCH = 8
N = 16
WORKERS = 2
INJECTION_SEED = 1
#: Generous retry budget: at rate 0.2 the per-attempt failure probability
#: is ~0.36 (crash or OSError), so 8 attempts push the per-job failure
#: probability below 1e-3 — and the seeded draws make the outcome a
#: constant of this file, not a coin flip per CI run.
RETRY_POLICY = RetryPolicy(max_attempts=8, backoff_s=0.005, max_backoff_s=0.05)


def make_graphs(count: int, n: int) -> list:
    return [
        repro.random_digraph_no_negative_cycle(n, density=0.5, max_weight=8, rng=seed)
        for seed in range(count)
    ]


def run_batch(graphs: list, rate: float, cache_dir: Path, *, inject: bool) -> dict:
    """One batch under one fault rate; returns the measured row."""
    store = ResultStore(cache_dir=cache_dir)
    engine = JobEngine(
        store=store, solver="floyd-warshall", retry_policy=RETRY_POLICY
    )
    config = FaultConfig(
        seed=INJECTION_SEED,
        crash_rate=rate,
        oserror_rate=rate,
        latency_rate=rate,
        latency_s=0.005,
        corrupt_rate=rate,
        corrupt_mode="bitflip",
    )
    jobs = [engine.submit(graph) for graph in graphs]
    started = time.perf_counter()
    if inject:
        with faults.inject(config) as plane:
            engine.run_pending_parallel(max_workers=WORKERS)
            injected = plane.snapshot()
    else:
        engine.run_pending_parallel(max_workers=WORKERS)
        injected = {kind: 0 for kind in faults.FAULT_KINDS}
    wall = time.perf_counter() - started

    done = sum(job.state is JobState.DONE for job in jobs)
    retries = sum(job.attempts - 1 for job in jobs)
    recovered = [job for job in jobs if job.attempts > 1]
    mean_recovery_wait = (
        sum(job.retry_wait_s for job in recovered) / len(recovered)
        if recovered
        else 0.0
    )

    # Exercise the quarantine path: drop memory, reload every artifact from
    # disk (corrupted archives quarantine and miss), and re-solve the misses.
    store.clear_memory()
    with faults.inject(config) if inject else _null_context():
        for graph, job in zip(graphs, jobs):
            key = artifact_key(job.digest, "floyd-warshall")
            if store.get(key) is None:
                resubmitted = engine.submit(graph)
                if resubmitted.state is JobState.PENDING:
                    engine.run(resubmitted.job_id)

    return {
        "fault_rate": rate,
        "jobs": len(jobs),
        "done": done,
        "retries": retries,
        "pool_rebuilds": engine.pool_rebuilds,
        "quarantined": store.stats.quarantined,
        "injected": injected,
        "wall_seconds": wall,
        "goodput_jobs_per_s": done / wall if wall > 0 else 0.0,
        "mean_recovery_wait_s": mean_recovery_wait,
        "artifacts": {
            job.digest: (
                job.artifact.distances.tobytes(),
                job.artifact.successors.tobytes(),
            )
            for job in jobs
            if job.artifact is not None
        },
    }


class _null_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def run_recovery_sweep(rates: list[float], batch: int, n: int):
    """The sweep: a fault-free baseline, then each injected rate."""
    graphs = make_graphs(batch, n)
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        baseline = run_batch(graphs, 0.0, tmp_path / "baseline", inject=False)
        rows = []
        for rate in rates:
            row = run_batch(graphs, rate, tmp_path / f"rate-{rate}", inject=True)
            row["recovered_identical"] = (
                row["artifacts"] == baseline["artifacts"]
                and len(row["artifacts"]) == len(graphs)
            )
            rows.append(row)
    return baseline, rows


def assert_contract(baseline: dict, rows: list[dict]) -> None:
    for row in rows:
        rate = row["fault_rate"]
        assert row["done"] == row["jobs"], (
            f"rate {rate}: only {row['done']}/{row['jobs']} jobs converged "
            f"to DONE within the retry budget"
        )
        assert row["recovered_identical"], (
            f"rate {rate}: recovered artifacts differ from fault-free solves"
        )
    assert baseline["retries"] == 0 and baseline["quarantined"] == 0


def render_table(baseline: dict, rows: list[dict]) -> str:
    lines = [
        "E19 — fault recovery "
        f"(batch={BATCH}, n={N}, workers={WORKERS}, "
        f"retry budget={RETRY_POLICY.max_attempts} attempts; "
        f"no-plane baseline {baseline['wall_seconds']:.3f}s, "
        f"{baseline['goodput_jobs_per_s']:.1f} jobs/s)",
        format_table(
            [
                # Crash injections die with their worker and cannot
                # self-report; the "rebuilds" column is their footprint.
                "fault rate", "done", "retries", "rebuilds", "quarantined",
                "injected l/o/x", "wall s", "goodput job/s",
                "recovery wait s", "identical",
            ],
            [
                [
                    f"{row['fault_rate']:.0%}",
                    f"{row['done']}/{row['jobs']}",
                    row["retries"],
                    row["pool_rebuilds"],
                    row["quarantined"],
                    "/".join(
                        str(row["injected"][kind])
                        for kind in ("latency", "oserror", "corrupt")
                    ),
                    f"{row['wall_seconds']:.3f}",
                    f"{row['goodput_jobs_per_s']:.1f}",
                    f"{row['mean_recovery_wait_s']:.4f}",
                    "yes" if row["recovered_identical"] else "NO",
                ]
                for row in rows
            ],
        ),
    ]
    return "\n".join(lines)


def metric_records(baseline: dict, rows: list[dict]) -> list[dict]:
    records = []
    for row in rows:
        records.append(
            {
                "n": N,
                "wall_seconds": row["wall_seconds"],
                "rounds": 0.0,
                "fault_rate": row["fault_rate"],
                "goodput_jobs_per_s": row["goodput_jobs_per_s"],
                "retries": row["retries"],
                "pool_rebuilds": row["pool_rebuilds"],
                "quarantined": row["quarantined"],
                "mean_recovery_wait_s": row["mean_recovery_wait_s"],
                "recovered_identical": row["recovered_identical"],
                "baseline_wall_seconds": baseline["wall_seconds"],
            }
        )
    return records


def test_e19_fault_recovery(benchmark):
    baseline, rows = benchmark.pedantic(
        lambda: run_recovery_sweep(FAULT_RATES, BATCH, N),
        rounds=1,
        iterations=1,
    )
    assert_contract(baseline, rows)
    write_result("e19_fault_recovery", render_table(baseline, rows))
    write_metrics("e19_fault_recovery", metric_records(baseline, rows))


def test_smoke_e19_fault_recovery():
    """Bench-smoke lane: full recovery contract at the top (20%) rate on a
    small batch — crashes, retries, corruption, and byte-identity."""
    baseline, rows = run_recovery_sweep([0.2], 3, 10)
    assert_contract(baseline, rows)
    row = rows[0]
    assert row["retries"] >= 0 and row["done"] == 3
