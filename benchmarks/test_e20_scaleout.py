"""E20 — multi-process scale-out (PR 10).

What this regenerates: the scaling behavior of the shared-memory
dispatch plane across worker counts.  Two workloads:

* a single ``n = 1024`` quantum ``compute_pairs`` solve whose per-class
  Grover searches fan out through :class:`repro.parallel.ClassDispatcher`
  (one ``BatchedMultiSearch`` per worker task — the smallest unit the RNG
  contract lets the dispatcher move cross-process);
* a 10 000-graph APSP sweep (``n = 16``) through
  :func:`repro.parallel.solve_weights_batch`, graphs packed once into a
  shared-memory arena and chunked across the pool.

Each runs at 1/2/4/8 workers.  The contract asserted here (and in the
bench-smoke lane via ``test_smoke_e20_scaleout``):

* every dispatched run is **byte-identical** to the in-process run —
  same pairs, same round ledger, same distances — at every worker count
  (this is what the shared-seed columns and whole-class dispatch buy);
* on a machine with ≥ 4 cores, 4 workers deliver ≥ 3× speedup on the
  quantum solve.  The committed table records ``cores`` so rows measured
  on smaller machines (where the speedup column can only show dispatch
  overhead, not parallelism) are interpretable rather than misleading.

The wall-clock columns vary per host; every other column is
deterministic.
"""

from __future__ import annotations

import os
import time

import numpy as np

import repro
from repro.analysis import format_table
from repro.core.compute_pairs import compute_pairs
from repro.parallel import solve_weights_batch

from benchmarks.conftest import write_metrics, write_result

WORKER_COUNTS = [1, 2, 4, 8]
QUANTUM_N = 1024
QUANTUM_SEED = 7
SWEEP_GRAPHS = 10_000
SWEEP_N = 16
CORES = os.cpu_count() or 1


def run_quantum_scaling(n: int, worker_counts: list[int]) -> list[dict]:
    """One quantum solve per worker count, all on the same instance."""
    graph = repro.random_undirected_graph(
        n, density=0.5, max_weight=7, rng=QUANTUM_SEED
    )
    instance = repro.FindEdgesInstance(graph)
    rows = []
    baseline = None
    for workers in worker_counts:
        started = time.perf_counter()
        solution = compute_pairs(
            instance, rng=QUANTUM_SEED + 1, workers=workers
        )
        wall = time.perf_counter() - started
        fingerprint = (
            tuple(sorted(solution.pairs)),
            solution.rounds,
            solution.ledger.snapshot(),
        )
        if baseline is None:
            baseline = {"wall": wall, "fingerprint": fingerprint}
        speedup = baseline["wall"] / wall if wall > 0 else 0.0
        rows.append(
            {
                "phase": "quantum",
                "n": n,
                "workers": workers,
                "wall_seconds": wall,
                "rounds": solution.rounds,
                "pairs": len(solution.pairs),
                "speedup": speedup,
                "efficiency": speedup / workers,
                "identical_to_sequential": fingerprint == baseline["fingerprint"],
            }
        )
    return rows


def run_sweep_scaling(
    num_graphs: int, n: int, worker_counts: list[int]
) -> list[dict]:
    """One ``num_graphs``-wide APSP batch per worker count."""
    weights = np.stack(
        [
            repro.random_digraph_no_negative_cycle(
                n, density=0.4, max_weight=8, rng=seed
            ).weights
            for seed in range(num_graphs)
        ]
    )
    rows = []
    baseline = None
    for workers in worker_counts:
        started = time.perf_counter()
        result = solve_weights_batch(weights, workers=workers)
        wall = time.perf_counter() - started
        fingerprint = (result.distances.tobytes(), result.rounds.tobytes())
        if baseline is None:
            baseline = {"wall": wall, "fingerprint": fingerprint}
        speedup = baseline["wall"] / wall if wall > 0 else 0.0
        rows.append(
            {
                "phase": "sweep",
                "n": n,
                "graphs": num_graphs,
                "workers": workers,
                "wall_seconds": wall,
                "rounds": float(result.rounds.sum()),
                "speedup": speedup,
                "efficiency": speedup / workers,
                "identical_to_sequential": fingerprint == baseline["fingerprint"],
            }
        )
    return rows


def assert_contract(rows: list[dict]) -> None:
    for row in rows:
        assert row["identical_to_sequential"], (
            f"{row['phase']} at {row['workers']} workers diverged from the "
            "in-process run — the dispatch plane must be observationally "
            "a no-op"
        )
    if CORES >= 4:
        quantum4 = next(
            row
            for row in rows
            if row["phase"] == "quantum" and row["workers"] == 4
        )
        assert quantum4["speedup"] >= 3.0, (
            f"4-worker quantum speedup {quantum4['speedup']:.2f}× < 3× "
            f"on a {CORES}-core machine"
        )


def render_table(rows: list[dict]) -> str:
    lines = [
        "E20 — multi-process scale-out "
        f"(quantum n={QUANTUM_N}; sweep {SWEEP_GRAPHS} graphs at "
        f"n={SWEEP_N}; host cores={CORES})",
        format_table(
            ["phase", "workers", "wall s", "speedup", "efficiency", "identical"],
            [
                [
                    row["phase"],
                    row["workers"],
                    f"{row['wall_seconds']:.3f}",
                    f"{row['speedup']:.2f}x",
                    f"{row['efficiency']:.2f}",
                    "yes" if row["identical_to_sequential"] else "NO",
                ]
                for row in rows
            ],
        ),
    ]
    if CORES < 4:
        lines.append(
            f"note: {CORES} core(s) — speedup columns measure dispatch "
            "overhead only; the >=3x contract is asserted on hosts with "
            ">=4 cores"
        )
    return "\n".join(lines)


def metric_records(rows: list[dict]) -> list[dict]:
    return [{**row, "cores": CORES} for row in rows]


def test_e20_scaleout(benchmark):
    rows = benchmark.pedantic(
        lambda: (
            run_quantum_scaling(QUANTUM_N, WORKER_COUNTS)
            + run_sweep_scaling(SWEEP_GRAPHS, SWEEP_N, WORKER_COUNTS)
        ),
        rounds=1,
        iterations=1,
    )
    assert_contract(rows)
    write_result("e20_scaleout", render_table(rows))
    write_metrics("e20_scaleout", metric_records(rows))


def test_smoke_e20_scaleout():
    """Bench-smoke lane: the byte-identity contract at 2 workers on a
    small instance and a small sweep — no tables written."""
    rows = run_quantum_scaling(48, [1, 2]) + run_sweep_scaling(64, 8, [1, 2])
    assert_contract(rows)
    assert {row["phase"] for row in rows} == {"quantum", "sweep"}
