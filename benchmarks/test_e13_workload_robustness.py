"""E13 — workload robustness of the full FindEdges stack.

The paper's guarantees are worst-case; this experiment sweeps the named
workload shapes (uniform / sparse / dense-negative / clustered / hub /
triangle-free) through the complete Proposition-1 + ComputePairs stack and
reports error profiles and the machinery each shape triggers:

* ``dense_negative`` — every pair in Θ(n) triangles: the promise is
  violated globally, the class structure saturates;
* ``clustered`` — high `Tα` classes concentrated on few block triples;
* ``hub`` — solution load concentrated on the hub's blocks (typicality);
* ``bipartite_like`` — the all-empty output regime.

Reproduced claim: one-sided error (no false positives) with near-perfect
recall *regardless of shape* — the randomized machinery does not depend on
input benevolence.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import format_table
from repro.core.constants import PaperConstants
from repro.core.problems import FindEdgesInstance
from repro.graphs.workloads import WORKLOADS, make_workload

from benchmarks.conftest import write_result

N = 64
CONSTANTS = PaperConstants(scale=0.2)


def run_workload(name: str, seed: int):
    graph = make_workload(name, N, rng=seed)
    instance = FindEdgesInstance(graph)
    backend = repro.QuantumFindEdges(constants=CONSTANTS, rng=seed)
    solution = backend.find_edges(instance)
    return instance, solution


def test_e13_workload_robustness(benchmark):
    rows = []
    for name in sorted(WORKLOADS):
        instance, solution = run_workload(name, seed=5)
        truth = instance.reference_solution()
        false_pos = len(solution.pairs - truth)
        missed = len(truth - solution.pairs)
        max_gamma = instance.max_scope_triangle_count()
        rows.append(
            [
                name,
                instance.graph.num_edges,
                len(truth),
                max_gamma,
                false_pos,
                missed,
                solution.rounds,
            ]
        )
        assert false_pos == 0, f"{name}: false positives"
        assert missed <= max(2, len(truth) // 25), f"{name}: recall too low"

    table = format_table(
        ["workload", "edges", "truth", "max Γ", "false+", "missed", "rounds"],
        rows,
        title=(
            f"E13  workload robustness of FindEdges (n={N}, scale {CONSTANTS.scale})\n"
            "one-sided error across every shape, including promise-violating ones"
        ),
    )
    write_result("e13_workload_robustness", table)

    # The triangle-free workload must produce the empty set exactly.
    empty_row = next(row for row in rows if row[0] == "bipartite_like")
    assert empty_row[2] == 0 and empty_row[5] == 0

    # dense_negative sits in the Θ(n)-triangles-per-pair regime Prop. 1
    # exists for: max Γ ≈ n − 2 (every other vertex closes a triangle).
    dense_row = next(row for row in rows if row[0] == "dense_negative")
    assert dense_row[3] == N - 2

    benchmark.pedantic(run_workload, args=("uniform", 7), rounds=1, iterations=1)
