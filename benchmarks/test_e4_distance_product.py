"""E4 — Propositions 2 + 3: the reduction chain's call counts.

Paper claims: a distance product of matrices with entries in
``{−M..M, ±∞}`` needs ``O(log M)`` FindEdges calls (binary search over the
tripartite construction); APSP needs ``O(log n)`` squarings with entries
bounded by ``nW`` throughout.

What this regenerates: call counts and exactness across an ``M`` sweep and
an ``n`` sweep, with the ``log``-shaped growth visible in the table.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import format_table
from repro.core.reductions import distance_product_via_find_edges

from benchmarks.conftest import write_result


def random_operands(seed: int, n: int, max_abs: int):
    rng = np.random.default_rng(seed)
    a = rng.integers(-max_abs, max_abs + 1, size=(n, n)).astype(float)
    b = rng.integers(-max_abs, max_abs + 1, size=(n, n)).astype(float)
    a[rng.random((n, n)) < 0.15] = np.inf
    b[rng.random((n, n)) < 0.15] = np.inf
    return a, b


def product_case(n: int, max_abs: int, seed: int):
    a, b = random_operands(seed, n, max_abs)
    report = distance_product_via_find_edges(a, b, repro.ReferenceFindEdges())
    exact = np.array_equal(report.product, repro.distance_product(a, b))
    return report, exact


def test_e4_distance_product_calls(benchmark):
    rows = []
    for max_abs in [2, 8, 32, 128, 512]:
        report, exact = product_case(8, max_abs, seed=1)
        expected = int(np.ceil(np.log2(4 * max_abs + 1))) + 1
        assert exact
        rows.append([max_abs, report.find_edges_calls, expected, exact])
    table = format_table(
        ["M", "calls", "≈log2(4M+1)+1", "exact"],
        rows,
        title="E4a  distance product: FindEdges calls vs entry bound M (Prop. 2)",
    )
    write_result("e4a_distance_product_calls", table)
    assert all(row[1] <= row[2] for row in rows)

    # APSP squaring schedule (Prop. 3): ⌈log2 n⌉ products, entries ≤ nW.
    rows = []
    for n in [6, 12, 24, 48]:
        graph = repro.random_digraph_no_negative_cycle(
            n, density=0.5, max_weight=8, rng=2
        )
        report = repro.solve_apsp_reference_pipeline(graph)
        assert np.array_equal(report.distances, repro.floyd_warshall(graph))
        finite = report.distances[np.isfinite(report.distances)]
        max_entry = float(np.abs(finite).max()) if finite.size else 0.0
        rows.append(
            [n, report.squarings, int(np.ceil(np.log2(n))), max_entry, n * 8]
        )
    table = format_table(
        ["n", "squarings", "⌈log2 n⌉", "max |dist|", "nW bound"],
        rows,
        title="E4b  APSP squaring schedule and entry growth (Prop. 3)",
    )
    write_result("e4b_apsp_squarings", table)
    assert all(row[1] == row[2] for row in rows)
    assert all(row[3] <= row[4] for row in rows)

    benchmark.pedantic(product_case, args=(8, 32, 4), rounds=1, iterations=1)
