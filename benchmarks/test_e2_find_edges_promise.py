"""E2 — Theorem 2: FindEdgesWithPromise in ``Õ(n^{1/4})`` rounds, w.h.p.

What this regenerates: Algorithm ComputePairs' measured round counts and
error rates over an ``n`` sweep, with the per-phase breakdown.  The
clean-exponent component is Step 1 (the ``Θ(n^{5/4})``-word gather ⇒
``~n^{1/4}`` rounds); the search phase carries the Theorem 3 polylogs.
The classical Dolev listing at the same sizes shows the ``n^{1/3}``
comparator's slope.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import fit_exponent, format_table
from repro.core.constants import PaperConstants
from repro.core.problems import FindEdgesInstance

from benchmarks.conftest import write_result

SIZES = [81, 256, 625]
CONSTANTS = PaperConstants(scale=0.05)


def run_compute_pairs(n: int, seed: int):
    graph = repro.random_undirected_graph(n, density=0.3, max_weight=6, rng=seed)
    instance = FindEdgesInstance(graph)
    solution = repro.compute_pairs(instance, constants=CONSTANTS, rng=seed)
    return instance, solution


def test_e2_find_edges_promise(benchmark):
    rows = []
    step1_rounds = []
    total_rounds = []
    dolev_rounds = []
    for n in SIZES:
        instance, solution = run_compute_pairs(n, seed=1)
        truth = instance.reference_solution()
        false_pos = len(solution.pairs - truth)
        false_neg = len(truth - solution.pairs)
        dolev = repro.DolevFindEdges(rng=1).find_edges(instance)
        assert dolev.pairs == truth
        assert false_pos == 0  # verification forbids false positives
        assert false_neg <= max(2, len(truth) // 100)  # w.h.p. recall
        step1 = solution.ledger.rounds("compute_pairs.step1_load")
        step1_rounds.append(step1)
        total_rounds.append(solution.rounds)
        dolev_rounds.append(dolev.rounds)
        rows.append(
            [
                n,
                solution.rounds,
                step1,
                dolev.rounds,
                len(truth),
                false_neg,
                solution.details["coverage"],
            ]
        )

    total_exp, _, _ = fit_exponent(SIZES, total_rounds)
    step1_exp, _, _ = fit_exponent(SIZES, step1_rounds)
    dolev_exp, _, _ = fit_exponent(SIZES, dolev_rounds)
    table = format_table(
        ["n", "rounds", "step1", "dolev", "truth", "missed", "coverage"],
        rows,
        title=(
            "E2  FindEdgesWithPromise rounds (Theorem 2)\n"
            f"fitted exponents: total={total_exp:.2f} (n^{{1/4}}·polylog), "
            f"step1={step1_exp:.2f} (paper: 1/4), dolev={dolev_exp:.2f} (paper: 1/3)"
        ),
    )
    write_result("e2_find_edges_promise", table)

    assert 0.05 < step1_exp < 0.45
    benchmark.pedantic(run_compute_pairs, args=(81, 2), rounds=1, iterations=1)
