"""E5 — the distributed-search substrate (Le Gall–Magniez / Grover).

Paper claims (Section 4.1): a distributed search over ``X`` with an
``r``-round evaluation costs ``Õ(r·√|X|)`` rounds and succeeds w.h.p.;
Grover's success probability follows ``sin²((2k+1)θ)``.

What this regenerates:
  (a) the success-probability *curve* — circuit simulator vs. the closed
      form used by the scalable tracker (exact agreement);
  (b) the ``√|X|`` scaling of oracle calls in the BBHT driver;
  (c) the w.h.p. success statistics.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro
from repro.analysis import fit_exponent, format_table
from repro.quantum import GroverAmplitudeTracker, GroverCircuit
from repro.quantum.distributed import DistributedQuantumSearch

from benchmarks.conftest import write_result


def mean_oracle_calls(num_items: int, seeds: range) -> tuple[float, float]:
    """Returns (mean oracle calls, mean Grover iterations).

    Oracle calls include one verification per BBHT repetition — an additive
    constant per repetition that flattens small-range fits — so the scaling
    fit below uses the iteration count (calls minus verifications), whose
    expectation is ``Θ(√N)`` cleanly.
    """
    calls = 0
    iterations = 0
    for seed in seeds:
        search = DistributedQuantumSearch(
            range(num_items), lambda x: x == 0, eval_rounds=1.0, rng=seed
        )
        outcome = search.run()
        calls += outcome.oracle_calls
        iterations += outcome.oracle_calls - outcome.repetitions
    return calls / len(seeds), max(1.0, iterations / len(seeds))


def test_e5_grover_curve_and_scaling(benchmark):
    # (a) probability curve: circuit vs closed form at N = 64, t = 1.
    circuit = GroverCircuit(64, [17])
    tracker = GroverAmplitudeTracker(64, 1)
    rows = []
    for k in range(0, 11):
        c = circuit.success_probability(k)
        t = tracker.success_probability(k)
        assert c == pytest.approx(t, abs=1e-9)
        rows.append([k, c, t, abs(c - t)])
    table = format_table(
        ["iterations k", "circuit", "closed form", "|diff|"],
        rows,
        title="E5a  Grover success curve sin²((2k+1)θ), N=64, t=1 (peak at k=6)",
    )
    write_result("e5a_grover_curve", table)
    best = max(range(11), key=circuit.success_probability)
    assert best == 6  # ⌊π/4·√64⌋

    # (b) iteration scaling ~ √N.
    sizes = [16, 64, 256, 1024, 4096]
    stats = [mean_oracle_calls(n, range(40)) for n in sizes]
    iteration_means = [it for _, it in stats]
    exponent, _, r2 = fit_exponent(sizes, iteration_means)
    rows = [
        [n, calls, its, math.sqrt(n)]
        for n, (calls, its) in zip(sizes, stats)
    ]
    table = format_table(
        ["|X|", "mean oracle calls", "mean iterations", "√|X|"],
        rows,
        title=f"E5b  BBHT driver: Grover iterations vs domain (fitted exponent {exponent:.2f}, paper: 0.5)",
    )
    write_result("e5b_grover_scaling", table)
    assert 0.3 < exponent < 0.7
    assert r2 > 0.9

    # (c) success statistics: w.h.p. success, zero false positives.
    found = 0
    for seed in range(200):
        search = DistributedQuantumSearch(
            range(64), lambda x: x == 5, eval_rounds=1.0, rng=seed
        )
        outcome = search.run()
        assert outcome.found in (5, None)
        found += outcome.found == 5
    assert found >= 198  # failure ≲ 1%

    benchmark.pedantic(mean_oracle_calls, args=(256, range(10)), rounds=1, iterations=1)


def test_e5c_optimal_iteration_peak(benchmark):
    """The peak of the success curve sits at ⌊π/4·√(N/t)⌋ across (N, t)."""
    from repro.quantum.amplitude import optimal_iterations

    rows = []
    for num_items, t in [(64, 1), (256, 1), (256, 4), (1024, 16)]:
        tracker = GroverAmplitudeTracker(num_items, t)
        predicted = optimal_iterations(num_items, t)
        # sin²((2k+1)θ) is periodic; compare within the first period only.
        window = range(predicted + 2)
        best = max(window, key=tracker.success_probability)
        rows.append([num_items, t, best, predicted, tracker.success_probability(best)])
        assert abs(best - predicted) <= 1
    table = format_table(
        ["N", "t", "argmax k", "⌊π/4·√(N/t)⌋", "peak prob"],
        rows,
        title="E5c  optimal iteration counts across (N, t)",
    )
    write_result("e5c_optimal_iterations", table)
    benchmark.pedantic(
        lambda: GroverAmplitudeTracker(1024, 16).success_probability(7),
        rounds=1,
        iterations=1,
    )
