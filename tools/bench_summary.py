#!/usr/bin/env python
"""Roll the machine-readable benchmark metrics into one summary file.

Benchmark runs emit ``benchmarks/results/<experiment>.json`` records with
the schema ``{experiment, n, wall_seconds, rounds, commit}`` (see
``write_metrics`` in ``benchmarks/conftest.py``).  This script collects
every such file into ``BENCH_SUMMARY.json`` at the repository root, keyed
by experiment, so the performance trajectory is diffable across PRs with
plain ``git diff``.

Usage::

    python tools/bench_summary.py [--output BENCH_SUMMARY.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"


def collect(results_dir: pathlib.Path) -> dict:
    experiments: dict[str, list] = {}
    for path in sorted(results_dir.glob("*.json")):
        try:
            records = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            print(f"warning: skipping malformed {path.name}: {error}", file=sys.stderr)
            continue
        if not isinstance(records, list):
            print(f"warning: skipping non-list {path.name}", file=sys.stderr)
            continue
        experiments[path.stem] = records
    commits = sorted(
        {
            str(record.get("commit"))
            for records in experiments.values()
            for record in records
            if record.get("commit")
        }
    )
    return {
        "experiments": experiments,
        "commits": commits,
        "num_experiments": len(experiments),
        "num_records": sum(len(records) for records in experiments.values()),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results-dir", type=pathlib.Path, default=RESULTS_DIR,
        help="directory holding the per-experiment *.json metric files",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=REPO_ROOT / "BENCH_SUMMARY.json",
        help="where to write the rolled-up summary",
    )
    args = parser.parse_args(argv)
    if not args.results_dir.is_dir():
        print(f"error: no results directory at {args.results_dir}", file=sys.stderr)
        return 1
    summary = collect(args.results_dir)
    args.output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {args.output} — {summary['num_experiments']} experiments, "
        f"{summary['num_records']} records"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
