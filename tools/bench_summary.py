#!/usr/bin/env python
"""Roll the machine-readable benchmark metrics into one summary file.

Benchmark runs emit ``benchmarks/results/<experiment>.json`` records with
the schema ``{experiment, n, wall_seconds, rounds, commit}`` (see
``write_metrics`` in ``benchmarks/conftest.py``).  This script collects
every such file into ``BENCH_SUMMARY.json`` at the repository root, keyed
by experiment, so the performance trajectory is diffable across PRs with
plain ``git diff``.

Usage::

    python tools/bench_summary.py [--output BENCH_SUMMARY.json] [--check]

``--check`` validates instead of (only) writing: every record must carry a
non-empty ``commit`` and a numeric ``wall_seconds``, so half-filled result
rows fail CI instead of silently polluting the cross-PR trajectory.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"


def collect(
    results_dir: pathlib.Path, skipped: list[str] | None = None
) -> dict:
    """Collect per-experiment records; unreadable files are skipped with a
    warning and, when ``skipped`` is given, recorded there so ``--check``
    can fail on them instead of silently dropping the experiment."""
    experiments: dict[str, list] = {}
    for path in sorted(results_dir.glob("*.json")):
        try:
            records = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            print(f"warning: skipping malformed {path.name}: {error}", file=sys.stderr)
            if skipped is not None:
                skipped.append(f"{path.name}: malformed JSON ({error})")
            continue
        if not isinstance(records, list):
            print(f"warning: skipping non-list {path.name}", file=sys.stderr)
            if skipped is not None:
                skipped.append(f"{path.name}: not a list of records")
            continue
        experiments[path.stem] = records
    commits = sorted(
        {
            str(record.get("commit"))
            for records in experiments.values()
            for record in records
            if record.get("commit")
        }
    )
    return {
        "experiments": experiments,
        "commits": commits,
        "num_experiments": len(experiments),
        "num_records": sum(len(records) for records in experiments.values()),
    }


def check(summary: dict) -> list[str]:
    """Schema problems in the collected records (empty list = healthy).

    Each record needs a non-empty ``commit`` and a numeric ``wall_seconds``;
    experiments whose runs predate the machine-readable schema surface here
    the next time they regenerate, instead of degrading the summary.
    """
    problems: list[str] = []
    for experiment, records in summary["experiments"].items():
        for index, record in enumerate(records):
            where = f"{experiment}.json row {index}"
            if not isinstance(record, dict):
                problems.append(f"{where}: not an object")
                continue
            if not record.get("commit"):
                problems.append(f"{where}: missing commit")
            wall = record.get("wall_seconds")
            if not isinstance(wall, (int, float)) or isinstance(wall, bool):
                problems.append(f"{where}: missing wall_seconds")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results-dir", type=pathlib.Path, default=RESULTS_DIR,
        help="directory holding the per-experiment *.json metric files",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=REPO_ROOT / "BENCH_SUMMARY.json",
        help="where to write the rolled-up summary",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate record schemas (commit, wall_seconds) and exit "
        "non-zero on problems instead of writing the summary",
    )
    args = parser.parse_args(argv)
    if not args.results_dir.is_dir():
        print(f"error: no results directory at {args.results_dir}", file=sys.stderr)
        return 1
    skipped: list[str] = []
    summary = collect(args.results_dir, skipped)
    if args.check:
        problems = [f"unreadable file — {reason}" for reason in skipped]
        problems += check(summary)
        for problem in problems:
            print(f"check: {problem}", file=sys.stderr)
        print(
            f"checked {summary['num_records']} records across "
            f"{summary['num_experiments']} experiments — "
            f"{len(problems)} problem(s)"
        )
        return 1 if problems else 0
    args.output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {args.output} — {summary['num_experiments']} experiments, "
        f"{summary['num_records']} records"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
