#!/usr/bin/env python
"""Roll the machine-readable benchmark metrics into one summary file.

Benchmark runs emit ``benchmarks/results/<experiment>.json`` records with
the schema ``{experiment, n, wall_seconds, rounds, commit}`` (see
``write_metrics`` in ``benchmarks/conftest.py``).  This script collects
every such file into ``BENCH_SUMMARY.json`` at the repository root, keyed
by experiment, so the performance trajectory is diffable across PRs with
plain ``git diff``.

Besides the raw per-experiment records, the summary carries a
``trajectory`` table — one ``{experiment, commit, n, wall_seconds}`` row
per measurement, merged with the rows already in the committed summary —
so the cross-PR speedup history stays machine-readable even though each
benchmark run overwrites its own results file with the current commit's
numbers.

Usage::

    python tools/bench_summary.py [--output BENCH_SUMMARY.json] [--check]

``--check`` validates instead of (only) writing: every record must carry a
non-empty ``commit`` and a numeric ``wall_seconds``, experiment ids across
``benchmarks/test_eN_*.py`` must be unique (two files once both claimed
e12), any ``phase_breakdown`` column must match the ``repro.telemetry/v1``
schema, and the committed summary's trajectory must already contain the
current records — so half-filled result rows, id collisions, malformed
telemetry columns, and a stale ``BENCH_SUMMARY.json`` all fail CI instead
of silently polluting the cross-PR trajectory.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
BENCH_DIR = REPO_ROOT / "benchmarks"

_EXPERIMENT_FILE = re.compile(r"test_e(\d+)[a-z]?_")

#: The telemetry snapshot schema ``phase_breakdown`` columns must carry
#: (see ``repro.telemetry.report.phase_breakdown``).
_BREAKDOWN_SCHEMA = "repro.telemetry/v1"
_PHASE_NUMERIC_KEYS = ("count", "wall_seconds", "self_seconds", "rng_calls", "rng_draws")


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def breakdown_problems(where: str, breakdown) -> list[str]:
    """Schema violations of one record's ``phase_breakdown`` column."""
    if not isinstance(breakdown, dict):
        return [f"{where}: phase_breakdown is not an object"]
    problems: list[str] = []
    schema = breakdown.get("schema")
    if schema != _BREAKDOWN_SCHEMA:
        problems.append(
            f"{where}: phase_breakdown schema {schema!r} != {_BREAKDOWN_SCHEMA!r}"
        )
    phases = breakdown.get("phases")
    if not isinstance(phases, dict):
        problems.append(f"{where}: phase_breakdown.phases is not an object")
    else:
        for name, entry in sorted(phases.items()):
            if not isinstance(entry, dict):
                problems.append(f"{where}: phase {name!r} is not an object")
                continue
            for key in _PHASE_NUMERIC_KEYS:
                if not _is_number(entry.get(key)):
                    problems.append(
                        f"{where}: phase {name!r} missing numeric {key!r}"
                    )
    rng = breakdown.get("rng")
    if not isinstance(rng, dict) or not all(
        _is_number(rng.get(key)) for key in ("calls", "draws")
    ):
        problems.append(f"{where}: phase_breakdown.rng missing calls/draws")
    congest = breakdown.get("congest")
    if not isinstance(congest, dict):
        problems.append(f"{where}: phase_breakdown.congest is not an object")
    else:
        for phase, entry in sorted(congest.items()):
            if not isinstance(entry, dict) or not all(
                _is_number(entry.get(key)) for key in ("rounds", "words")
            ):
                problems.append(
                    f"{where}: congest phase {phase!r} missing rounds/words"
                )
    return problems


#: Row schema of the e19 fault-recovery experiment: the recovery contract
#: columns trajectory diffs depend on (``recovered_identical`` is the
#: byte-identity assertion's verdict, so it must be a real boolean).
_E19_NUMERIC_KEYS = ("fault_rate", "goodput_jobs_per_s", "retries")


def e19_problems(where: str, record: dict) -> list[str]:
    """Schema violations of one e19 fault-recovery record."""
    problems = []
    for key in _E19_NUMERIC_KEYS:
        if not _is_number(record.get(key)):
            problems.append(f"{where}: missing numeric {key!r}")
    if not isinstance(record.get("recovered_identical"), bool):
        problems.append(f"{where}: missing boolean 'recovered_identical'")
    return problems


#: Row schema of the e20 scale-out experiment: the scaling columns the
#: trajectory depends on, plus the byte-identity verdict of the dispatched
#: run (``identical_to_sequential``) and the host ``cores`` count that
#: makes speedup rows from small machines interpretable.
_E20_NUMERIC_KEYS = ("workers", "speedup", "efficiency", "cores")


def e20_problems(where: str, record: dict) -> list[str]:
    """Schema violations of one e20 scale-out record."""
    problems = []
    for key in _E20_NUMERIC_KEYS:
        if not _is_number(record.get(key)):
            problems.append(f"{where}: missing numeric {key!r}")
    if not isinstance(record.get("identical_to_sequential"), bool):
        problems.append(f"{where}: missing boolean 'identical_to_sequential'")
    return problems


def phase_rollup(experiments: dict[str, list]) -> dict:
    """Per-experiment telemetry phases: ``{experiment: {phase: wall_seconds}}``.

    Every record of one results file shares the test-wide breakdown (the
    benchmark conftest snapshots one collector per test), so the first
    record carrying one represents the run.
    """
    rollup: dict[str, dict] = {}
    for experiment, records in sorted(experiments.items()):
        for record in records:
            if not isinstance(record, dict):
                continue
            breakdown = record.get("phase_breakdown")
            if isinstance(breakdown, dict) and isinstance(
                breakdown.get("phases"), dict
            ):
                rollup[experiment] = {
                    name: entry.get("wall_seconds")
                    for name, entry in sorted(breakdown["phases"].items())
                    if isinstance(entry, dict)
                }
                break
    return rollup


def experiment_id_collisions(bench_dir: pathlib.Path) -> list[str]:
    """Benchmark files that claim an already-taken ``eN`` experiment id."""
    owners: dict[str, list[str]] = {}
    for path in sorted(bench_dir.glob("test_e*_*.py")):
        match = _EXPERIMENT_FILE.match(path.name)
        if match is None:
            continue
        owners.setdefault(f"e{match.group(1)}", []).append(path.name)
    return [
        f"duplicate experiment id {experiment}: {', '.join(files)}"
        for experiment, files in sorted(owners.items())
        if len(files) > 1
    ]


def trajectory_rows(experiments: dict[str, list]) -> list[dict]:
    """The ``experiment × commit × n × wall_seconds`` rows of the current
    result records (rows without a commit or wall time are left to
    ``check`` to flag)."""
    rows = []
    for experiment, records in sorted(experiments.items()):
        for index, record in enumerate(records):
            if not isinstance(record, dict):
                continue
            commit = record.get("commit")
            wall = record.get("wall_seconds")
            if not commit or not isinstance(wall, (int, float)) or isinstance(wall, bool):
                continue
            rows.append(
                {
                    "experiment": experiment,
                    "commit": str(commit),
                    "row": index,
                    "n": record.get("n"),
                    "wall_seconds": wall,
                }
            )
    return rows


def _trajectory_key(row: dict) -> tuple:
    # The row index disambiguates experiments that emit several records for
    # the same n (e.g. scale sweeps) — a re-run at the same commit replaces
    # its own rows positionally.
    return (
        str(row.get("experiment")),
        str(row.get("commit")),
        str(row.get("row")),
        str(row.get("n")),
    )


def merge_trajectory(previous: list, current: list[dict]) -> list[dict]:
    """Merge the committed summary's trajectory with the current rows.

    Keyed by ``(experiment, commit, row, n)``; a re-run at the same commit
    replaces its old rows, rows from earlier commits survive — that is the
    cross-PR history.
    """
    merged: dict[tuple, dict] = {}
    for row in previous:
        if isinstance(row, dict):
            merged[_trajectory_key(row)] = row
    for row in current:
        merged[_trajectory_key(row)] = row
    return sorted(
        merged.values(),
        key=_trajectory_key,
    )


def collect(
    results_dir: pathlib.Path,
    skipped: list[str] | None = None,
    previous_trajectory: list | None = None,
) -> dict:
    """Collect per-experiment records; unreadable files are skipped with a
    warning and, when ``skipped`` is given, recorded there so ``--check``
    can fail on them instead of silently dropping the experiment."""
    experiments: dict[str, list] = {}
    for path in sorted(results_dir.glob("*.json")):
        try:
            records = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            print(f"warning: skipping malformed {path.name}: {error}", file=sys.stderr)
            if skipped is not None:
                skipped.append(f"{path.name}: malformed JSON ({error})")
            continue
        if not isinstance(records, list):
            print(f"warning: skipping non-list {path.name}", file=sys.stderr)
            if skipped is not None:
                skipped.append(f"{path.name}: not a list of records")
            continue
        experiments[path.stem] = records
    commits = sorted(
        {
            str(record.get("commit"))
            for records in experiments.values()
            for record in records
            if record.get("commit")
        }
    )
    trajectory = merge_trajectory(
        previous_trajectory or [], trajectory_rows(experiments)
    )
    return {
        "experiments": experiments,
        "commits": commits,
        "num_experiments": len(experiments),
        "num_records": sum(len(records) for records in experiments.values()),
        "trajectory": trajectory,
        "phase_rollup": phase_rollup(experiments),
    }


def check(summary: dict, committed: dict | None = None) -> list[str]:
    """Schema problems in the collected records (empty list = healthy).

    Each record needs a non-empty ``commit`` and a numeric ``wall_seconds``;
    experiments whose runs predate the machine-readable schema surface here
    the next time they regenerate, instead of degrading the summary.  The
    trajectory rows must be well-formed, and — when the committed summary is
    supplied — must already include every current record, so a results
    refresh that skipped ``bench_summary.py`` fails loudly.
    """
    problems: list[str] = []
    for experiment, records in summary["experiments"].items():
        for index, record in enumerate(records):
            where = f"{experiment}.json row {index}"
            if not isinstance(record, dict):
                problems.append(f"{where}: not an object")
                continue
            if not record.get("commit"):
                problems.append(f"{where}: missing commit")
            wall = record.get("wall_seconds")
            if not isinstance(wall, (int, float)) or isinstance(wall, bool):
                problems.append(f"{where}: missing wall_seconds")
            if "phase_breakdown" in record:
                problems.extend(
                    breakdown_problems(where, record["phase_breakdown"])
                )
            if experiment.startswith("e19"):
                problems.extend(e19_problems(where, record))
            if experiment.startswith("e20"):
                problems.extend(e20_problems(where, record))
    for index, row in enumerate(summary.get("trajectory", [])):
        where = f"trajectory row {index}"
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        if not row.get("commit"):
            problems.append(f"{where}: missing commit")
        wall = row.get("wall_seconds")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool):
            problems.append(f"{where}: missing wall_seconds")
    if committed is not None:
        committed_keys = {
            _trajectory_key(row)
            for row in committed.get("trajectory", [])
            if isinstance(row, dict)
        }
        for row in trajectory_rows(summary["experiments"]):
            if _trajectory_key(row) not in committed_keys:
                problems.append(
                    "committed trajectory is stale: missing "
                    f"{row['experiment']} @ {row['commit']} (n={row['n']}) — "
                    "re-run tools/bench_summary.py"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results-dir", type=pathlib.Path, default=RESULTS_DIR,
        help="directory holding the per-experiment *.json metric files",
    )
    parser.add_argument(
        "--bench-dir", type=pathlib.Path, default=BENCH_DIR,
        help="directory holding the benchmarks (experiment-id uniqueness)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=REPO_ROOT / "BENCH_SUMMARY.json",
        help="where to write the rolled-up summary",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate record schemas (commit, wall_seconds), experiment-id "
        "uniqueness, and trajectory freshness, and exit non-zero on "
        "problems instead of writing the summary",
    )
    args = parser.parse_args(argv)
    if not args.results_dir.is_dir():
        print(f"error: no results directory at {args.results_dir}", file=sys.stderr)
        return 1
    committed: dict | None = None
    if args.output.is_file():
        try:
            committed = json.loads(args.output.read_text())
        except json.JSONDecodeError as error:
            # A corrupt committed summary must never silently disable the
            # freshness check or drop the merged trajectory history.
            print(f"error: cannot parse {args.output}: {error}", file=sys.stderr)
            return 1
    previous_trajectory = (committed or {}).get("trajectory", [])
    skipped: list[str] = []
    summary = collect(args.results_dir, skipped, previous_trajectory)
    if args.check:
        problems = [f"unreadable file — {reason}" for reason in skipped]
        problems += experiment_id_collisions(args.bench_dir)
        problems += check(summary, committed)
        for problem in problems:
            print(f"check: {problem}", file=sys.stderr)
        print(
            f"checked {summary['num_records']} records across "
            f"{summary['num_experiments']} experiments "
            f"({len(summary['trajectory'])} trajectory rows) — "
            f"{len(problems)} problem(s)"
        )
        return 1 if problems else 0
    args.output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {args.output} — {summary['num_experiments']} experiments, "
        f"{summary['num_records']} records, "
        f"{len(summary['trajectory'])} trajectory rows"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
