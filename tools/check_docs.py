#!/usr/bin/env python
"""Doc-rot checker: verify that the documentation still points at things
that exist.

Checks, over README.md, ROADMAP.md, and docs/*.md:

1. every relative markdown link ``[text](path)`` resolves to an existing
   file (anchors ``#...`` are stripped; external ``http(s)://`` and
   ``mailto:`` links are skipped);
2. every repository path mentioned in backticks or tables
   (``src/repro/...py``, ``tests/...py``, ``benchmarks/...``, ``docs/...``,
   ``tools/...``, ``examples/...``) exists;
3. every dotted ``repro.*`` name resolves to an importable module, or an
   attribute of one (``repro.congest.router.route_rounds`` must import
   ``repro.congest.router`` and find ``route_rounds`` on it).

Exit code 0 when clean; 1 with a per-finding report otherwise.  Run from
the repository root (CI does) — ``src/`` is put on ``sys.path``
automatically so the import checks work without installation.
"""

from __future__ import annotations

import importlib
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", ROOT / "ROADMAP.md", *sorted((ROOT / "docs").glob("*.md"))]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
PATH_RE = re.compile(
    r"\b((?:src/repro|tests|benchmarks|docs|tools|examples)/[\w./\-]+)"
)
MODULE_RE = re.compile(r"\brepro(?:\.\w+)+")

#: Dotted-name suffixes documentation may reference without them being
#: importable attributes (CLI flags rendered as repro options, etc.).
SKIP_MODULE_PREFIXES = ("repro.egg",)


def check_links(path: pathlib.Path, text: str) -> list[str]:
    problems = []
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append(f"{path.name}: broken link -> {target}")
    return problems


def check_paths(path: pathlib.Path, text: str) -> list[str]:
    problems = []
    for mention in set(PATH_RE.findall(text)):
        candidate = ROOT / mention.rstrip(".")
        # Allow glob/placeholder mentions like benchmarks/test_eN_*.py.
        if "*" in mention or "eN" in pathlib.PurePath(mention).name:
            continue
        if not candidate.exists():
            problems.append(f"{path.name}: missing path -> {mention}")
    return problems


def resolve_dotted(name: str) -> bool:
    """True iff ``name`` is an importable module or a chain of attributes
    hanging off one."""
    parts = name.split(".")
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check_modules(path: pathlib.Path, text: str) -> list[str]:
    problems = []
    for name in sorted(set(MODULE_RE.findall(text))):
        if name.startswith(SKIP_MODULE_PREFIXES):
            continue
        if not resolve_dotted(name):
            problems.append(f"{path.name}: unresolvable name -> {name}")
    return problems


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    problems: list[str] = []
    for doc in DOC_FILES:
        if not doc.exists():
            problems.append(f"missing documentation file: {doc}")
            continue
        text = doc.read_text()
        problems += check_links(doc, text)
        problems += check_paths(doc, text)
        problems += check_modules(doc, text)
    if problems:
        print(f"{len(problems)} documentation problem(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"docs clean: {len(DOC_FILES)} files checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
