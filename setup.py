"""Legacy setup shim.

The offline reproduction environment lacks the ``wheel`` package, so PEP 660
editable installs are unavailable; this shim lets ``pip install -e .`` fall
back to ``setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
